// sgprs_cli — run any scheduler/pool/workload combination from the command
// line and print (or CSV-export) the paper's metrics.
//
// Examples:
//   sgprs_cli --scheduler=sgprs --contexts=3 --oversub=1.5 --tasks=24
//   sgprs_cli --scheduler=naive --tasks=20 --duration=5
//   sgprs_cli --sweep=1:30 --csv=fig3.csv --contexts=2 --oversub=2.0
//   sgprs_cli --network=resnet50 --tasks=8 --fps=15 --stages=8
//   sgprs_cli --devices=4 --placement=binpack --tasks=40
//   sgprs_cli --devices=2080ti,3090 --placement=hash --tasks=24
//   sgprs_cli --scenario=scenarios/paper_scenario1.json
//   sgprs_cli --suite=scenarios --report=suite_report
//   sgprs_cli --experiment=scenarios/experiments/dmr_vs_utilization.json \
//             --jobs=4 --report=experiment_report
//   sgprs_cli --scenario=scenarios/flash_crowd.json --record-trace=day.json
//   sgprs_cli --trace=day.json
//   sgprs_cli --scenario=scenarios/diurnal_wave.json \
//             --trace-spans=spans.json --profile
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/csv.hpp"
#include "common/flags.hpp"
#include "common/thread_pool.hpp"
#include "fleet/report.hpp"
#include "metrics/report.hpp"
#include "metrics/timeseries.hpp"
#include "obs/instruments.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "trace/trace.hpp"
#include "workload/experiment.hpp"
#include "workload/scenario.hpp"
#include "workload/spec.hpp"
#include "workload/suite.hpp"

namespace {

using namespace sgprs;
namespace fs = std::filesystem;

/// Classic Levenshtein distance, for "did you mean" scenario suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// A missing --scenario/--experiment/--trace path gets nearby candidates
/// from its directory (or `fallback_dir`) instead of a bare "no such
/// file". `what` names the thing in the message ("spec", "trace").
void suggest_near(const std::string& path,
                  const std::string& fallback_dir = "scenarios",
                  const char* what = "spec") {
  const fs::path p(path);
  std::string dir = p.parent_path().string();
  if (dir.empty() || !fs::is_directory(dir)) dir = fallback_dir;
  const std::string stem = p.stem().string();
  auto files = workload::list_spec_files(dir);
  if (files.empty()) return;
  std::stable_sort(files.begin(), files.end(),
                   [&](const std::string& a, const std::string& b) {
                     return edit_distance(stem, fs::path(a).stem().string()) <
                            edit_distance(stem, fs::path(b).stem().string());
                   });
  std::cerr << "no " << what << " at " << path << " — did you mean:\n";
  for (std::size_t i = 0; i < files.size() && i < 3; ++i) {
    std::cerr << "  " << files[i] << "\n";
  }
}

/// A --record-trace path pointing into a missing directory gets nearby
/// sibling directories suggested (same Levenshtein ranking as spec paths).
void suggest_near_dir(const std::string& dir) {
  const fs::path p(dir);
  fs::path base = p.parent_path();
  if (base.empty()) base = ".";
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return;
  std::vector<std::string> dirs;
  for (const auto& entry : fs::directory_iterator(base, ec)) {
    if (entry.is_directory()) dirs.push_back(entry.path().string());
  }
  if (dirs.empty()) return;
  const std::string name = p.filename().string();
  std::stable_sort(dirs.begin(), dirs.end(),
                   [&](const std::string& a, const std::string& b) {
                     return edit_distance(name,
                                          fs::path(a).filename().string()) <
                            edit_distance(name,
                                          fs::path(b).filename().string());
                   });
  std::cerr << "did you mean:\n";
  for (std::size_t i = 0; i < dirs.size() && i < 3; ++i) {
    std::cerr << "  " << dirs[i] << "/" << "\n";
  }
}

/// Opens a `flag`-supplied output file before the run burns any wall
/// clock: a missing or unwritable directory must fail fast with a pointed
/// error (and nearby-directory suggestions), not after the simulation
/// finishes. Shared by --record-trace and --trace-spans.
bool open_output_file(const char* flag, const std::string& path,
                      std::ofstream& out) {
  const fs::path parent = fs::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty() && !fs::is_directory(parent, ec)) {
    std::cerr << "error: " << flag << ": directory \"" << parent.string()
              << "\" does not exist\n";
    suggest_near_dir(parent.string());
    return false;
  }
  out.open(path, std::ios::trunc);
  if (!out) {
    std::cerr << "error: " << flag << ": cannot write \"" << path
              << "\" (directory not writable?)\n";
    return false;
  }
  return true;
}

/// --list-scenarios: enumerate every spec in a directory with its kind and
/// description, without running anything.
int list_scenarios(const std::string& dir) {
  const auto files = workload::list_spec_files(dir);
  if (files.empty()) {
    std::cerr << "no .json scenario specs in " << dir << "\n";
    return 1;
  }
  metrics::Table t({"file", "name", "kind", "description"});
  for (const auto& file : files) {
    const std::string stem = fs::path(file).stem().string();
    // Trace *data* files (--record-trace / trace_scale output) are inputs
    // to replay specs, not runnable scenarios — label them as such.
    if (trace::sniff_trace_file(file)) {
      try {
        const auto tr = trace::load_trace(file);
        t.add_row({file, tr.name.empty() ? stem : tr.name, "trace-data",
                   tr.description});
      } catch (const std::exception& e) {
        t.add_row({file, stem, "invalid", e.what()});
      }
      continue;
    }
    try {
      const auto root = common::parse_json_file(file);
      const bool experiment = root.find("experiment") != nullptr;
      const auto spec = workload::parse_scenario_spec(
          root, stem, /*skip_experiment_section=*/experiment);
      std::string kind = "scenario";
      if (experiment) {
        kind = "experiment";
      } else if (spec.timeline && !spec.timeline->trace_path.empty()) {
        kind = "trace";
      } else if (spec.dynamic()) {
        kind = "dynamic";
      } else if (spec.fleet_mode) {
        kind = "fleet";
      }
      t.add_row({file, spec.name, kind, spec.description});
    } catch (const std::exception& e) {
      t.add_row({file, stem, "invalid", e.what()});
    }
  }
  t.print(std::cout);
  return 0;
}

/// Per-device breakdown plus the fleet rollup row.
void print_fleet(const workload::ClusterScenarioResult& r) {
  metrics::Table devices({"device", "spec", "SMs", "tasks", "FPS", "DMR",
                          "p99 (ms)", "util"});
  for (const auto& d : r.fleet.devices) {
    devices.add_row({std::to_string(d.device_index), d.device_name,
                     std::to_string(d.total_sms),
                     std::to_string(d.tasks_assigned),
                     metrics::Table::fmt(d.snapshot.fps, 1),
                     metrics::Table::pct(d.snapshot.dmr),
                     metrics::Table::fmt(d.snapshot.p99_latency_ms, 2),
                     metrics::Table::pct(d.utilization)});
  }
  devices.print(std::cout);

  const auto& f = r.fleet.fleet;
  metrics::Table fleet({"fleet metric", "value"});
  fleet.add_row({"tasks placed", std::to_string(r.fleet.tasks_assigned)});
  fleet.add_row({"tasks rejected",
                 std::to_string(r.fleet.tasks_rejected)});
  fleet.add_row({"tasks oom-rejected",
                 std::to_string(r.fleet.tasks_oom_rejected)});
  fleet.add_row({"total FPS", metrics::Table::fmt(f.fps, 1)});
  fleet.add_row({"on-time FPS", metrics::Table::fmt(f.fps_on_time, 1)});
  fleet.add_row({"DMR", metrics::Table::pct(f.dmr)});
  fleet.add_row({"p99 latency (ms)",
                 metrics::Table::fmt(f.p99_latency_ms, 2)});
  fleet.add_row({"mean utilization",
                 metrics::Table::pct(r.fleet.mean_utilization)});
  fleet.add_row({"migrations", std::to_string(r.stage_migrations)});
  std::cout << "\n";
  fleet.print(std::cout);
}

/// Single-run metrics table (shared by the flag path and --scenario).
void print_single(const std::string& scheduler, int tasks,
                  const workload::ScenarioResult& r) {
  metrics::Table t({"metric", "value"});
  t.add_row({"scheduler", scheduler});
  t.add_row({"tasks", std::to_string(tasks)});
  t.add_row({"total FPS", metrics::Table::fmt(r.fps(), 1)});
  t.add_row({"on-time FPS", metrics::Table::fmt(r.aggregate.fps_on_time, 1)});
  t.add_row({"DMR", metrics::Table::pct(r.dmr())});
  t.add_row({"p50 latency (ms)",
             metrics::Table::fmt(r.aggregate.p50_latency_ms, 2)});
  t.add_row({"p99 latency (ms)",
             metrics::Table::fmt(r.aggregate.p99_latency_ms, 2)});
  t.add_row({"migrations", std::to_string(r.stage_migrations)});
  t.add_row({"medium promotions", std::to_string(r.medium_promotions)});
  t.print(std::cout);
}

/// Shared tail of --scenario and --trace: run the (already validated)
/// spec, optionally capturing a trace, print the summary, write report
/// files, and flush the recorded trace last. `origin` names the input in
/// the recorded trace's description.
int run_loaded_spec(const workload::ScenarioSpec& spec,
                    const std::string& origin, const std::string& report,
                    const std::string& record_path,
                    const std::string& span_path, bool profile) {
  std::ofstream trace_out;
  std::unique_ptr<trace::TraceRecorder> recorder;
  if (!record_path.empty()) {
    if (!open_output_file("--record-trace", record_path, trace_out)) {
      return 1;
    }
    recorder = std::make_unique<trace::TraceRecorder>(
        spec.name, "recorded from " + origin);
  }
  std::ofstream span_out;
  std::unique_ptr<obs::SpanSink> spans;
  if (!span_path.empty()) {
    if (!spec.dynamic()) {
      std::cerr << "error: --trace-spans requires a dynamic "
                   "(timeline/fleet_policy) scenario; a closed-world run "
                   "has no span stream to export\n";
      return 1;
    }
    if (!open_output_file("--trace-spans", span_path, span_out)) return 1;
    spans = std::make_unique<obs::SpanSink>();
  }
  std::unique_ptr<obs::PhaseProfiler> profiler;
  if (profile) profiler = std::make_unique<obs::PhaseProfiler>();
  obs::Instruments instruments;
  instruments.spans = spans.get();
  instruments.profiler = profiler.get();

  workload::validate(spec);
  workload::RunSeeds seeds;
  seeds.sim = spec.base.seed;
  seeds.generator = spec.generator ? spec.generator->seed : 0;
  const auto r = [&] {
    obs::PhaseProfiler::Scope whole(profiler.get(),
                                    obs::PhaseProfiler::Phase::kRun);
    return workload::run_spec(spec, seeds, recorder.get(), instruments);
  }();
  std::cout << "scenario " << spec.name;
  if (!spec.description.empty()) std::cout << " — " << spec.description;
  std::cout << "\n\n";
  if (r.dynamic) {
    fleet::print_fleet_run(r.dyn, std::cout);
    if (!report.empty()) {
      obs::PhaseProfiler::Scope write(
          profiler.get(), obs::PhaseProfiler::Phase::kReportWrite);
      const std::string json_path = report + ".json";
      const std::string series_path = report + "_series.csv";
      std::ofstream json(json_path);
      std::ofstream series(series_path);
      if (!json || !series) {
        std::cerr << "cannot write " << (json ? series_path : json_path)
                  << "\n";
        return 1;
      }
      fleet::write_fleet_run_json(r.dyn, json);
      metrics::write_timeseries_csv(r.dyn.series, series);
      std::cout << "\nwrote " << json_path << " and " << series_path << "\n";
    }
  } else {
    if (r.fleet) {
      print_fleet(r.cluster);
    } else {
      print_single(rt::to_string(spec.base.scheduler),
                   static_cast<int>(r.single.per_task.size()), r.single);
    }
    if (!report.empty()) {
      std::cerr << "note: --report with --scenario only writes files for "
                   "dynamic (timeline/fleet_policy) scenarios; nothing "
                   "written\n";
    }
  }
  if (recorder) {
    trace::write_trace(recorder->trace(), trace_out);
    std::cout << "wrote trace " << record_path << " ("
              << recorder->trace().events.size() << " events)\n";
  }
  if (spans) {
    {
      obs::PhaseProfiler::Scope exp(profiler.get(),
                                    obs::PhaseProfiler::Phase::kSpanExport);
      spans->write_perfetto(span_out);
    }
    std::cout << "wrote spans " << span_path << " ("
              << spans->total_events() << " events, "
              << spans->num_devices() << " device tracks)\n";
  }
  if (profiler) {
    // Wall-clock numbers go to stderr (varies run to run) and, with
    // --report, to a _profile.json sidecar that the deterministic
    // byte-compare set deliberately excludes.
    profiler->print(std::cerr);
    if (!report.empty()) {
      const std::string prof_path = report + "_profile.json";
      std::ofstream prof_out(prof_path);
      if (!prof_out) {
        std::cerr << "cannot write " << prof_path << "\n";
        return 1;
      }
      profiler->write_json(prof_out);
      std::cout << "wrote " << prof_path << "\n";
    }
  }
  return 0;
}

/// Parses one --fail-device value ("<device>@<seconds>") into a scripted
/// crash event. Returns false with a pointed message on any malformation.
bool parse_fail_device(const std::string& arg, fleet::FaultEvent& ev) {
  const auto at = arg.find('@');
  if (at == std::string::npos || at == 0 || at + 1 == arg.size()) {
    std::cerr << "error: --fail-device: want <device>@<seconds> "
                 "(e.g. 2@1.5), got \"" << arg << "\"\n";
    return false;
  }
  const std::string dev = arg.substr(0, at);
  const std::string when = arg.substr(at + 1);
  char* end = nullptr;
  const long idx = std::strtol(dev.c_str(), &end, 10);
  if (!end || *end != '\0' || idx < 0) {
    std::cerr << "error: --fail-device: device index must be a "
                 "non-negative integer, got \"" << dev << "\"\n";
    return false;
  }
  const double t = std::strtod(when.c_str(), &end);
  if (!end || *end != '\0' || !(t > 0.0)) {
    std::cerr << "error: --fail-device: crash time must be a positive "
                 "number of seconds, got \"" << when << "\"\n";
    return false;
  }
  ev.kind = fleet::FaultEvent::Kind::kCrash;
  ev.device = static_cast<int>(idx);
  ev.at_s = t;
  return true;
}

/// Injects --fail-device crashes into the spec's fault section (creating
/// one when the spec has none). Validation of device indices against the
/// fleet shape is the spec validator's job — it names the field path.
bool inject_fail_devices(const std::vector<std::string>& fail_devices,
                         workload::ScenarioSpec& spec) {
  if (fail_devices.empty()) return true;
  if (!spec.faults) spec.faults = fleet::FaultSpec{};
  for (const auto& arg : fail_devices) {
    fleet::FaultEvent ev;
    if (!parse_fail_device(arg, ev)) return false;
    spec.faults->events.push_back(ev);
  }
  workload::validate(spec);
  return true;
}

/// --scenario=file.json: run one declarative spec. Dynamic (timeline /
/// fleet_policy) runs print the fleet-run summary and, when --report is
/// set, write <report>.json (full run incl. time series and audit) and
/// <report>_series.csv. With --trace the spec's timeline is replaced by
/// the trace (replay against the spec's base config); with --record-trace
/// the run's admit/retire stream is written out.
int run_scenario_file(const std::string& path, const std::string& report,
                      const std::string& trace_path,
                      const std::string& record_path, int shards_override,
                      const std::vector<std::string>& fail_devices,
                      const std::string& span_path, bool profile) {
  if (!fs::exists(path)) {
    std::cerr << "error: no such scenario spec: " << path << "\n";
    suggest_near(path);
    return 1;
  }
  auto spec = workload::load_scenario_spec(path);
  if (shards_override > 0) {
    // --shards re-partitions the run without editing the spec; any count
    // yields byte-identical reports (docs/sharding.md).
    spec.base.shards = shards_override;
    workload::validate(spec);
  }
  if (!trace_path.empty()) {
    if (!fs::exists(trace_path)) {
      std::cerr << "error: no such trace: " << trace_path << "\n";
      suggest_near(trace_path, "scenarios/traces", "trace");
      return 1;
    }
    fleet::TimelineSpec tl;
    tl.trace_path = trace_path;
    tl.trace = std::make_shared<const trace::Trace>(
        trace::load_trace(trace_path));
    spec.timeline = std::move(tl);
    workload::validate(spec);
  }
  if (!inject_fail_devices(fail_devices, spec)) return 1;
  return run_loaded_spec(spec, path, report, record_path, span_path,
                         profile);
}

/// --experiment=file.json: expand the grid x replications, run on a worker
/// pool, print the per-cell CI table and write <report>.csv/.json.
int run_experiment_file(const std::string& path, int jobs,
                        const std::string& report, int shards_override) {
  auto spec = workload::load_experiment_spec(path);
  if (shards_override > 0) {
    // Shards compose with --jobs: each replication runs sharded inside
    // one of the pool's jobs. Results are byte-identical either way.
    spec.base.base.shards = shards_override;
    workload::validate(spec.base);
  }

  // Open the report files before burning wall clock on the grid: an
  // unwritable --report path must fail fast, not after the whole run.
  const std::string csv_path = report + ".csv";
  const std::string json_path = report + ".json";
  std::ofstream csv(csv_path);
  std::ofstream json(json_path);
  if (!csv || !json) {
    std::cerr << "cannot write " << (csv ? json_path : csv_path) << "\n";
    return 1;
  }

  if (jobs <= 0) jobs = common::ThreadPool::hardware_threads();
  const auto r = workload::run_experiment(spec, jobs);
  workload::print_experiment(r, std::cout);
  std::cout << "\n" << r.total_runs << " runs (" << r.total_failures
            << " failed) on " << jobs << " job(s) in "
            << metrics::Table::fmt(r.wall_seconds, 2) << " s\n";

  workload::write_experiment_csv(r, csv);
  workload::write_experiment_json(r, json);
  std::cout << "wrote " << csv_path << " and " << json_path << "\n";
  return r.total_failures == 0 ? 0 : 1;
}

/// --suite=dir: run every spec, print the comparison, write the report.
int run_suite_dir(const std::string& dir, const std::string& report) {
  const auto runs = workload::run_suite(dir);
  workload::print_suite(runs, std::cout);

  const std::string csv_path = report + ".csv";
  const std::string json_path = report + ".json";
  std::ofstream csv(csv_path);
  std::ofstream json(json_path);
  if (!csv || !json) {
    std::cerr << "cannot write " << (csv ? json_path : csv_path) << "\n";
    return 1;
  }
  workload::write_suite_csv(runs, csv);
  workload::write_suite_json(runs, json);
  std::cout << "\nwrote " << csv_path << " and " << json_path << "\n";
  return workload::suite_ok(runs) ? 0 : 1;
}

/// Fills `cfg` from the shared workload flags (scheduler, pool shape, sim
/// window, devices, placement). Returns false — with the message already
/// printed — on an unknown name. `fleet_mode` reports whether the flags
/// force the cluster path.
bool parse_base_config(const common::FlagParser& flags,
                       workload::ScenarioConfig& cfg, bool& fleet_mode) {
  const std::string sched = flags.get("scheduler");
  if (const auto kind = rt::parse_scheduler_kind(sched)) {
    cfg.scheduler = *kind;
  } else {
    std::cerr << "unknown --scheduler (want "
              << rt::scheduler_kind_names() << "): " << sched << "\n";
    return false;
  }
  cfg.num_contexts = flags.get_int("contexts");
  cfg.oversubscription = flags.get_double("oversub");
  cfg.num_tasks = flags.get_int("tasks");
  cfg.fps = flags.get_double("fps");
  cfg.num_stages = flags.get_int("stages");
  cfg.duration = common::SimTime::from_sec(flags.get_double("duration"));
  cfg.warmup = common::SimTime::from_sec(flags.get_double("warmup"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.sgprs.medium_boost = flags.get_bool("medium-boost");
  cfg.sgprs.abort_hopeless = flags.get_bool("abort-hopeless");
  cfg.sgprs.max_in_flight_per_task = flags.get_int("in-flight");
  cfg.network_builder = dnn::network_builder_by_name(flags.get("network"));
  if (!cfg.network_builder) {
    std::cerr << "unknown --network (want " << dnn::network_names()
              << "): " << flags.get("network") << "\n";
    return false;
  }

  const auto fleet = cluster::parse_fleet(flags.get("devices"));
  if (!fleet) {
    std::cerr << "bad --devices (want a count or a comma list of "
              << gpu::device_names() << "): " << flags.get("devices")
              << "\n";
    return false;
  }
  cfg.num_devices = static_cast<int>(fleet->size());
  if (cfg.num_devices == 1) {
    cfg.device = fleet->front();  // single-GPU path honours --devices=3090
  } else {
    cfg.fleet = *fleet;
  }
  // Placement/admission only exist on the cluster path; an explicit flag
  // on a 1-device run routes there too (instead of being silently
  // dropped), giving a one-device fleet with admission control.
  fleet_mode = cfg.num_devices > 1 || flags.has("placement") ||
               flags.has("admission-margin");
  if (const auto policy =
          cluster::parse_placement_policy(flags.get("placement"))) {
    cfg.placement = *policy;
  } else {
    std::cerr << "unknown --placement (want "
              << cluster::placement_policy_names()
              << "): " << flags.get("placement") << "\n";
    return false;
  }
  // Range checking (margin <= 1, oversub >= 1, ...) is centralized in
  // workload::validate, called by the run functions.
  cfg.admission_margin = flags.get_double("admission-margin");
  // Only an explicit --shards overrides: ad-hoc single-GPU runs stay on
  // the classic path (shards > 1 requires a dynamic spec — validated).
  if (flags.has("shards")) cfg.shards = flags.get_int("shards");
  return true;
}

/// --trace=file.json (no --scenario): replay a recorded trace against the
/// base config the flags describe. The sim window defaults to the trace's
/// horizon plus half a second of drain unless --duration is explicit.
int run_trace_file(const std::string& path, const common::FlagParser& flags,
                   const std::string& report,
                   const std::string& record_path,
                   const std::vector<std::string>& fail_devices,
                   const std::string& span_path, bool profile) {
  if (!fs::exists(path)) {
    std::cerr << "error: no such trace: " << path << "\n";
    suggest_near(path, "scenarios/traces", "trace");
    return 1;
  }
  auto tr = std::make_shared<const trace::Trace>(trace::load_trace(path));
  workload::ScenarioSpec spec;
  spec.name = tr->name.empty() ? fs::path(path).stem().string() : tr->name;
  spec.description = tr->description;
  bool fleet_mode = false;
  if (!parse_base_config(flags, spec.base, fleet_mode)) return 1;
  spec.base.num_tasks = 0;  // all load comes from the trace
  spec.fleet_mode = true;
  fleet::TimelineSpec tl;
  tl.trace_path = path;
  tl.trace = tr;
  spec.timeline = std::move(tl);
  if (!flags.has("duration")) {
    spec.base.duration =
        common::SimTime::from_ns(tr->horizon().ns + 500'000'000);
  }
  workload::validate(spec);
  if (!inject_fail_devices(fail_devices, spec)) return 1;
  return run_loaded_spec(spec, path, report, record_path, span_path,
                         profile);
}

int run(const common::FlagParser& flags) {
  if (flags.get_bool("list-scenarios")) {
    return list_scenarios(flags.has("suite") ? flags.get("suite")
                                             : "scenarios");
  }
  if (flags.has("scenario")) {
    return run_scenario_file(flags.get("scenario"),
                             flags.has("report") ? flags.get("report") : "",
                             flags.get("trace"), flags.get("record-trace"),
                             flags.has("shards") ? flags.get_int("shards")
                                                 : 0,
                             flags.get_all("fail-device"),
                             flags.get("trace-spans"),
                             flags.get_bool("profile"));
  }
  if (flags.has("trace")) {
    return run_trace_file(flags.get("trace"), flags,
                          flags.has("report") ? flags.get("report") : "",
                          flags.get("record-trace"),
                          flags.get_all("fail-device"),
                          flags.get("trace-spans"),
                          flags.get_bool("profile"));
  }
  if (flags.has("fail-device")) {
    std::cerr << "error: --fail-device needs --scenario or --trace to know "
                 "which fleet to crash\n";
    return 1;
  }
  if (flags.has("record-trace")) {
    std::cerr << "error: --record-trace needs --scenario or --trace to "
                 "know what to run\n";
    return 1;
  }
  if (flags.has("trace-spans")) {
    std::cerr << "error: --trace-spans needs --scenario or --trace to "
                 "know what to run\n";
    return 1;
  }
  if (flags.get_bool("profile")) {
    std::cerr << "error: --profile needs --scenario or --trace to know "
                 "what to run\n";
    return 1;
  }
  if (flags.has("experiment")) {
    if (!fs::exists(flags.get("experiment"))) {
      std::cerr << "error: no such experiment spec: "
                << flags.get("experiment") << "\n";
      suggest_near(flags.get("experiment"));
      return 1;
    }
    // Distinct default prefix: an experiment must never silently overwrite
    // a suite_report.* pair from an earlier --suite run.
    return run_experiment_file(flags.get("experiment"), flags.get_int("jobs"),
                               flags.has("report") ? flags.get("report")
                                                   : "experiment_report",
                               flags.has("shards") ? flags.get_int("shards")
                                                   : 0);
  }
  if (flags.has("suite")) {
    return run_suite_dir(flags.get("suite"), flags.get("report"));
  }

  workload::ScenarioConfig cfg;
  bool fleet_mode = false;
  if (!parse_base_config(flags, cfg, fleet_mode)) return 1;
  const std::string sched = flags.get("scheduler");

  int sweep_from = 0;
  int sweep_to = 0;
  if (flags.has("sweep")) {
    const std::string s = flags.get("sweep");
    const auto colon = s.find(':');
    if (colon == std::string::npos) {
      std::cerr << "--sweep wants from:to, got " << s << "\n";
      return 1;
    }
    sweep_from = std::atoi(s.substr(0, colon).c_str());
    sweep_to = std::atoi(s.substr(colon + 1).c_str());
    if (sweep_from < 1 || sweep_to < sweep_from) {
      std::cerr << "bad --sweep range\n";
      return 1;
    }
  }

  if (fleet_mode) {
    if (sweep_from != 0) {
      std::cerr << "--sweep is not supported in fleet mode; use "
                   "bench/fig_cluster_scaling for fleet sweeps\n";
      return 1;
    }
    const auto r = workload::run_cluster_scenario(cfg);
    std::cout << cfg.num_devices << "-device fleet, scheduler " << sched
              << ", placement "
              << cluster::to_string(cfg.placement) << ", "
              << cfg.num_tasks << " tasks offered\n\n";
    print_fleet(r);
    return 0;
  }

  if (sweep_from == 0) {
    const auto r = workload::run_scenario(cfg);
    print_single(sched, cfg.num_tasks, r);
    return 0;
  }

  // Sweep mode.
  const auto results = workload::sweep_num_tasks(cfg, sweep_from, sweep_to);
  const int pivot = workload::find_pivot(results, sweep_from);
  if (flags.has("csv")) {
    std::ofstream out(flags.get("csv"));
    if (!out) {
      std::cerr << "cannot write " << flags.get("csv") << "\n";
      return 1;
    }
    common::CsvWriter csv(out);
    csv.header({"tasks", "fps", "fps_on_time", "dmr", "p50_ms", "p99_ms"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& a = results[i].aggregate;
      csv.row({std::to_string(sweep_from + static_cast<int>(i)),
               common::CsvWriter::num(a.fps, 2),
               common::CsvWriter::num(a.fps_on_time, 2),
               common::CsvWriter::num(a.dmr, 4),
               common::CsvWriter::num(a.p50_latency_ms, 3),
               common::CsvWriter::num(a.p99_latency_ms, 3)});
    }
    std::cout << "wrote " << results.size() << " rows to "
              << flags.get("csv") << " (pivot at " << pivot << " tasks)\n";
    return 0;
  }
  metrics::Table t({"tasks", "total FPS", "DMR"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    t.add_row({std::to_string(sweep_from + static_cast<int>(i)),
               metrics::Table::fmt(results[i].fps(), 0),
               metrics::Table::pct(results[i].dmr())});
  }
  t.print(std::cout);
  std::cout << "pivot: " << pivot << " tasks\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::FlagParser flags;
  flags.define("scheduler", rt::scheduler_kind_names(), "sgprs");
  flags.define("contexts", "context pool size (paper: 2 or 3)", "2");
  flags.define("oversub", "over-subscription level (SGPRS only)", "1.5");
  flags.define("tasks", "number of identical periodic tasks", "16");
  flags.define("fps", "task rate", "30");
  flags.define("stages", "stages per task", "6");
  flags.define("network", dnn::network_names(), "resnet18");
  flags.define("duration", "simulated seconds", "2.0");
  flags.define("warmup", "warm-up seconds excluded from metrics", "0.4");
  flags.define("seed", "phase-jitter seed", "42");
  flags.define("in-flight", "max in-flight jobs per task", "1");
  flags.define("sweep", "sweep task counts, e.g. 1:30", "");
  flags.define("csv", "write sweep results to a CSV file", "");
  flags.define("scenario",
               "run a declarative JSON scenario spec "
               "(docs/scenario-format.md); other workload flags are ignored",
               "");
  flags.define("suite",
               "run every .json spec in a directory and write a comparison "
               "report",
               "");
  flags.define_bool("list-scenarios",
                    "list the specs in scenarios/ (or the --suite dir) with "
                    "their kind and description, without running them");
  flags.define("report",
               "report file prefix (writes <prefix>.csv and <prefix>.json; "
               "default suite_report for --suite, experiment_report for "
               "--experiment)",
               "suite_report");
  flags.define("experiment",
               "run a Monte-Carlo experiment spec (docs/experiments.md): "
               "grid x seed replications with 95% CIs",
               "");
  flags.define("trace",
               "replay a recorded trace (docs/traces.md): alone, against "
               "the base-config flags; with --scenario, replaces that "
               "spec's timeline",
               "");
  flags.define("record-trace",
               "write the run's admit/retire stream as a trace file "
               "(requires --scenario or --trace)",
               "");
  flags.define("trace-spans",
               "write the run's execution spans as Chrome/Perfetto "
               "trace-event JSON (open in ui.perfetto.dev); dynamic "
               "scenarios only; byte-identical at any --shards "
               "(docs/observability.md)",
               "");
  flags.define_bool("profile",
                    "time the runtime's coarse phases (wall clock) and "
                    "print a per-phase table to stderr; with --report also "
                    "writes <report>_profile.json (excluded from "
                    "deterministic byte-compares)");
  flags.define("jobs",
               "worker threads for --experiment (0 = all hardware threads; "
               "results are byte-identical for any value)",
               "0");
  flags.define_multi("fail-device",
                     "inject a scripted crash into a --scenario/--trace "
                     "run: <device>@<seconds>, e.g. --fail-device 2@1.5");
  flags.define("shards",
               "parallel shards inside one dynamic run (overrides the "
               "spec's sim.shards; results are byte-identical for any "
               "value)",
               "1");
  flags.define("devices",
               "fleet: a device count (\"4\") or a comma list of device "
               "names (\"2080ti,3090\")",
               "1");
  flags.define("placement",
               std::string("fleet placement policy: ") +
                   cluster::placement_policy_names(),
               "leastloaded");
  flags.define("admission-margin",
               "fleet admission budget as a fraction of per-device "
               "capacity; 0 disables admission control",
               "0.95");
  flags.define("medium-boost",
               "medium-priority promotion of late chains (paper: on)",
               "true");
  flags.define_bool("abort-hopeless", "abort jobs past their deadline");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << flags.help(argv[0]);
    return 1;
  }
  if (flags.get_bool("help")) {
    std::cout << flags.help(argv[0]);
    return 0;
  }
  try {
    return run(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
