// Ablation E (extension study): deadline-aware shedding.
//
// Two knobs beyond the paper: the per-task in-flight cap (frame-buffer
// depth) and aborting jobs whose final deadline has already passed. Both
// trade completed-late frames against on-time capacity under overload.
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;
  using metrics::Table;

  std::cout << "Ablation E — overload shedding (Scenario 1, os 1.5, 28 "
               "tasks)\n\n";
  Table t({"variant", "total FPS", "on-time FPS", "DMR", "p99 lat (ms)"});
  struct V {
    std::string name;
    int cap;
    bool abort_hopeless;
  };
  for (const auto& v :
       {V{"cap 1, no abort (default)", 1, false},
        V{"cap 1 + abort hopeless", 1, true},
        V{"cap 2, no abort", 2, false},
        V{"cap 2 + abort hopeless", 2, true},
        V{"cap 4, no abort", 4, false},
        V{"cap 4 + abort hopeless", 4, true}}) {
    workload::ScenarioConfig cfg;
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.num_contexts = 2;
    cfg.oversubscription = 1.5;
    cfg.num_tasks = 28;
    cfg.duration = common::SimTime::from_sec(2.0);
    cfg.warmup = common::SimTime::from_sec(0.4);
    cfg.sgprs.max_in_flight_per_task = v.cap;
    cfg.sgprs.abort_hopeless = v.abort_hopeless;
    const auto r = workload::run_scenario(cfg);
    t.add_row({v.name, Table::fmt(r.fps(), 0),
               Table::fmt(r.aggregate.fps_on_time, 0),
               Table::pct(r.dmr()),
               Table::fmt(r.aggregate.p99_latency_ms, 1)});
    std::cerr << "  " << v.name << " done\n";
  }
  t.print(std::cout);
  std::cout << "\nDeeper frame buffers push frames through late (total FPS "
               "holds, on-time FPS\ncollapses); aborting hopeless jobs "
               "reclaims that waste for frames that can still\nmake it.\n";
  return 0;
}
