// Ablation B: context-assignment policy (paper Section IV-B2).
//
// The paper's three-criteria rule (empty queues first, then deadline-
// meeting with shortest queue, then earliest finish) against round-robin,
// random, and pure least-loaded assignment, across load levels.
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;
  using metrics::Table;

  struct Variant {
    std::string name;
    rt::ContextAssignPolicy policy;
  };
  const Variant variants[] = {
      {"paper (3 criteria)", rt::ContextAssignPolicy::kPaper},
      {"round-robin", rt::ContextAssignPolicy::kRoundRobin},
      {"random", rt::ContextAssignPolicy::kRandom},
      {"least-loaded", rt::ContextAssignPolicy::kLeastLoaded},
  };

  std::cout << "Ablation B — context assignment policy (Scenario 1, os "
               "1.5)\n";
  for (int tasks : {20, 24, 28}) {
    Table t({"policy", "total FPS", "DMR", "p99 lat (ms)", "migrations"});
    for (const auto& v : variants) {
      workload::ScenarioConfig cfg;
      cfg.scheduler = workload::SchedulerKind::kSgprs;
      cfg.num_contexts = 2;
      cfg.oversubscription = 1.5;
      cfg.num_tasks = tasks;
      cfg.duration = common::SimTime::from_sec(2.0);
      cfg.warmup = common::SimTime::from_sec(0.4);
      cfg.sgprs.assign_policy = v.policy;
      const auto r = workload::run_scenario(cfg);
      t.add_row({v.name, Table::fmt(r.fps(), 0), Table::pct(r.dmr()),
                 Table::fmt(r.aggregate.p99_latency_ms, 1),
                 std::to_string(r.stage_migrations)});
      std::cerr << "  " << tasks << " tasks / " << v.name << " done\n";
    }
    std::cout << "\n" << tasks << " tasks:\n";
    t.print(std::cout);
  }
  return 0;
}
