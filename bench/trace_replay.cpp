// bench_trace_replay — throughput of trace-driven replay against the
// synthetic churn generators that produced the trace.
//
// One churn run (scripted wave + Poisson arrivals, as bench_fleet_churn)
// is recorded through trace::TraceRecorder, then the captured trace is
// replayed against the same base spec. Both runs are measured with the
// process-local steady clock after a warm-up run. Replay schedules every
// admit/retire up front from the trace instead of drawing them from the
// arrival processes at run time, so the interesting number is the
// ingestion overhead: replayed sim events per wall second vs. synthetic.
// Reports BENCH_trace.json (schema: docs/benchmarks.md). Trajectory data,
// not a gate.
#include <chrono>
#include <functional>
#include <iostream>
#include <memory>

#include "figure_common.hpp"
#include "fleet/runtime.hpp"
#include "trace/trace.hpp"
#include "workload/spec.hpp"

namespace {

using namespace sgprs;

workload::ScenarioSpec churn_spec() {
  workload::ScenarioSpec spec;
  spec.name = "bench_trace_replay";
  spec.base.num_contexts = 2;
  spec.base.oversubscription = 1.5;
  spec.base.duration = common::SimTime::from_sec(2.0);
  spec.base.warmup = common::SimTime::from_sec(0.2);
  spec.base.seed = 42;
  spec.base.admission_margin = 0.9;
  spec.fleet_mode = true;

  workload::TaskEntrySpec base_tasks;
  base_tasks.name = "cam";
  base_tasks.count = 6;
  spec.tasks.push_back(base_tasks);

  fleet::TimelineSpec timeline;
  timeline.seed = 7;
  fleet::StreamTemplate tmpl;
  tmpl.name = "burst";
  tmpl.tier = 1;
  timeline.templates.push_back(tmpl);
  fleet::TimelineEvent wave;
  wave.kind = fleet::TimelineEvent::Kind::kAdmit;
  wave.target = "burst";
  wave.count = 2;
  wave.every_s = 0.1;
  wave.from_s = 0.1;
  wave.until_s = 1.0;
  timeline.events.push_back(wave);
  fleet::ArrivalProcess arrivals;
  arrivals.tmpl = "burst";
  arrivals.rate_per_s = 80.0;
  arrivals.lifetime_min_s = 0.2;
  arrivals.lifetime_max_s = 0.5;
  timeline.arrivals.push_back(arrivals);
  spec.timeline = std::move(timeline);
  return spec;
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto synthetic = churn_spec();
  workload::validate(synthetic);

  // Record once (capture is append-only and does not perturb the run),
  // then measure the plain synthetic run: warm-up + measured.
  trace::TraceRecorder recorder(synthetic.name, "bench capture");
  const fleet::FleetRunResult recorded =
      fleet::run_fleet_scenario(synthetic, {synthetic.base.seed, 0},
                                &recorder);
  fleet::FleetRunResult synth_result;
  const double synth_s = wall_seconds(
      [&] { synth_result = fleet::run_fleet_scenario(synthetic); });

  // Replay spec: same base, timeline replaced by the captured trace.
  workload::ScenarioSpec replay = synthetic;
  fleet::TimelineSpec tl;
  tl.trace = std::make_shared<const trace::Trace>(recorder.trace());
  replay.timeline = std::move(tl);
  workload::validate(replay);

  fleet::FleetRunResult warm = fleet::run_fleet_scenario(replay);
  fleet::FleetRunResult replay_result;
  const double replay_s = wall_seconds(
      [&] { replay_result = fleet::run_fleet_scenario(replay); });
  (void)recorded;
  (void)warm;

  const auto trace_events =
      static_cast<double>(recorder.trace().events.size());
  const double synth_eps = synth_result.sim_events / synth_s;
  const double replay_eps = replay_result.sim_events / replay_s;

  std::cout << "trace replay bench\n"
            << "  trace:     " << recorder.trace().events.size()
            << " admit/retire events\n"
            << "  synthetic: " << synth_result.sim_events << " events in "
            << synth_s << " s (" << synth_eps / 1e6 << " M events/s)\n"
            << "  replay:    " << replay_result.sim_events << " events in "
            << replay_s << " s (" << replay_eps / 1e6 << " M events/s)\n";

  bench::BenchReport report("trace");
  report.add("trace_events", trace_events, "events");
  report.add("synthetic_wall_s", synth_s, "s");
  report.add("synthetic_sim_events", synth_result.sim_events, "events");
  report.add("synthetic_events_per_s", synth_eps, "events/s");
  report.add("replay_wall_s", replay_s, "s");
  report.add("replay_sim_events", replay_result.sim_events, "events");
  report.add("replay_events_per_s", replay_eps, "events/s");
  report.add("replay_vs_synthetic_events_per_s_ratio",
             replay_eps / synth_eps, "ratio");
  report.write();
  return 0;
}
