// Extension study: heterogeneous context pools.
//
// The paper's pool model CP = {cp_1..cp_np} allows per-context SM counts
// but its evaluation only uses uniform pools. This compares uniform pools
// against lopsided splits at the same total allocation — relevant when one
// tenant needs a latency-optimized big partition.
#include <iostream>
#include <numeric>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;
  using metrics::Table;

  struct Pool {
    std::string name;
    std::vector<int> sms;
  };
  const Pool pools[] = {
      {"uniform 34+34", {34, 34}},
      {"lopsided 45+23", {45, 23}},
      {"lopsided 51+17", {51, 17}},
      {"uniform 34+34+34 (os 1.5)", {34, 34, 34}},
      {"mixed 51+34+17 (os 1.5)", {51, 34, 17}},
      {"big+small 60+21+21 (os 1.5)", {60, 21, 21}},
  };

  std::cout << "Heterogeneous pools — identical ResNet18 tasks @ 30 fps\n";
  for (int tasks : {20, 24}) {
    Table t({"pool", "total SMs", "total FPS", "DMR", "p99 lat (ms)"});
    for (const auto& p : pools) {
      workload::ScenarioConfig cfg;
      cfg.scheduler = workload::SchedulerKind::kSgprs;
      cfg.context_sms = p.sms;
      cfg.num_tasks = tasks;
      cfg.duration = common::SimTime::from_sec(2.0);
      cfg.warmup = common::SimTime::from_sec(0.4);
      const auto r = workload::run_scenario(cfg);
      const int total = std::accumulate(p.sms.begin(), p.sms.end(), 0);
      t.add_row({p.name, std::to_string(total), Table::fmt(r.fps(), 0),
                 Table::pct(r.dmr()),
                 Table::fmt(r.aggregate.p99_latency_ms, 1)});
      std::cerr << "  " << tasks << "/" << p.name << " done\n";
    }
    std::cout << "\n" << tasks << " tasks:\n";
    t.print(std::cout);
  }
  std::cout << "\nWith identical tasks, uniform pools win slightly (no "
               "partition is a bottleneck);\nlopsided pools become "
               "interesting for mixed-criticality sets — see "
               "examples/multi_tenant.\n";
  return 0;
}
