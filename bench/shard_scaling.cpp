// bench_shard_scaling — events/s of one dynamic fleet run as the shard
// count grows (docs/sharding.md).
//
// The workload is device-dominated on purpose: 8 devices each serving a
// steady stream set, an inert fleet policy, and a coarse series window, so
// nearly all events execute inside the parallel shard phases and the
// epoch-barrier overhead (a handful of control instants) is visible but
// not dominant. Every shard count is first checked byte-identical against
// the serial run — a scaling number for a run that diverged would be
// meaningless.
//
// Merges its metrics into BENCH_fleet.json next to bench_fleet_churn's
// (BenchReport::merge_existing; schema v2, docs/benchmarks.md).
// Trajectory data, not a gate: absolute speedup depends on the host's
// core count (1 on a serial container, ~4 on CI runners).
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "figure_common.hpp"
#include "fleet/report.hpp"
#include "fleet/runtime.hpp"
#include "workload/spec.hpp"

namespace {

using namespace sgprs;

workload::ScenarioSpec scaling_spec() {
  workload::ScenarioSpec spec;
  spec.name = "bench_shard_scaling";
  spec.base.num_contexts = 2;
  spec.base.oversubscription = 1.5;
  spec.base.duration = common::SimTime::from_sec(2.0);
  spec.base.warmup = common::SimTime::from_sec(0.2);
  spec.base.seed = 42;
  spec.base.num_devices = 8;
  // Round-robin keeps the per-shard event load balanced by construction
  // (devices map onto shards round-robin too).
  spec.base.placement = cluster::PlacementPolicy::kRoundRobin;
  spec.base.admission_margin = 0.0;  // fixed set, no admission control
  spec.fleet_mode = true;

  workload::TaskEntrySpec cams;
  cams.name = "cam";
  cams.count = 48;  // 6 streams per device
  spec.tasks.push_back(cams);

  // Dynamic-by-policy: routes through the fleet runtime (the sharded
  // path) without autoscaler or churn barriers; the only control-plane
  // instants are the series samples.
  fleet::FleetPolicySpec policy;
  policy.series_window_ms = 500.0;
  spec.fleet_policy = std::move(policy);
  return spec;
}

std::string report_bytes(const fleet::FleetRunResult& r) {
  std::ostringstream os;
  fleet::write_fleet_run_json(r, os);
  return os.str();
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::BenchReport report("fleet");
  std::cout << "shard scaling bench (8 devices, 48 streams)\n";

  double serial_eps = 0.0;
  std::string serial_bytes;
  for (int shards : {1, 2, 4, 8}) {
    auto spec = scaling_spec();
    spec.base.shards = shards;
    workload::validate(spec);

    // Warm-up run (page in code, grow slabs and pools) + measured run.
    fleet::FleetRunResult warm = fleet::run_fleet_scenario(spec);
    (void)warm;
    fleet::FleetRunResult result;
    const double wall =
        wall_seconds([&] { result = fleet::run_fleet_scenario(spec); });

    const std::string bytes = report_bytes(result);
    if (shards == 1) {
      serial_bytes = bytes;
    } else if (bytes != serial_bytes) {
      std::cerr << "ERROR: shards=" << shards
                << " report diverged from the serial run\n";
      return 1;
    }

    const double eps = result.sim_events / wall;
    if (shards == 1) serial_eps = eps;
    const double speedup = eps / serial_eps;
    std::cout << "  shards=" << shards << ": " << result.sim_events
              << " events in " << wall << " s (" << eps / 1e6
              << " M events/s, " << speedup << "x)\n";

    const std::string tag = "shards_" + std::to_string(shards);
    report.add(tag + "_wall_s", wall, "s");
    report.add(tag + "_events_per_s", eps, "events/s");
    report.add(tag + "_speedup", speedup, "ratio");
  }

  report.merge_existing();
  report.write();
  return 0;
}
