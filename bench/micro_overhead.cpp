// Micro-benchmarks (google-benchmark): costs of the building blocks —
// event engine throughput, share computation, executor kernel churn,
// scheduler decision latency, and a full scenario second.
#include <benchmark/benchmark.h>

#include <memory>

#include "dnn/builders.hpp"
#include "dnn/profiler.hpp"
#include "gpu/context_pool.hpp"
#include "rt/runner.hpp"
#include "rt/sgprs_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace sgprs;

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(common::SimTime::from_ns(i), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_ComputeShares(benchmark::State& state) {
  const auto model = gpu::SpeedupModel::rtx2080ti();
  const std::vector<int> ctx_sms = {45, 45, 45};
  std::vector<gpu::ShareRequest> reqs;
  for (int i = 0; i < state.range(0); ++i) {
    reqs.push_back({i % 3, i % 2 ? 2.0 : 1.0, gpu::OpClass::kConv});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpu::compute_shares(model, 68, ctx_sms, reqs, gpu::SharingParams{}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeShares)->Arg(4)->Arg(12);

void BM_ExecutorKernelChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    gpu::Executor exec(engine, gpu::rtx2080ti(),
                       gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
    const auto ctx = exec.create_context(34);
    const auto s0 = exec.create_stream(ctx, gpu::StreamPriority::kHigh);
    const auto s1 = exec.create_stream(ctx, gpu::StreamPriority::kLow);
    gpu::KernelDesc k;
    k.op = gpu::OpClass::kConv;
    k.work_sm_seconds = 1e-4;
    for (int i = 0; i < 500; ++i) {
      exec.enqueue(i % 2 ? s0 : s1, k, {});
    }
    engine.run();
    benchmark::DoNotOptimize(exec.total_work_done());
  }
  state.SetItemsProcessed(state.iterations() * 500);
  state.SetLabel("kernels per iteration: 500");
}
BENCHMARK(BM_ExecutorKernelChurn);

void BM_SgprsReleaseDecision(benchmark::State& state) {
  // Cost of one release -> context assignment -> dispatch chain.
  sim::Engine engine;
  gpu::Executor exec(engine, gpu::rtx2080ti(),
                     gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
  gpu::ContextPoolConfig pc;
  pc.num_contexts = 3;
  gpu::ContextPool pool(exec, pc);
  metrics::Collector collector;
  rt::SgprsScheduler sched(exec, pool, collector);
  dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                     dnn::CostModel::calibrated());
  auto net = std::make_shared<const dnn::Network>(dnn::resnet18());
  std::vector<rt::Task> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(rt::build_task(i, net, {}, prof, {pool.at(0).sm_limit}));
    sched.admit(tasks.back());
  }
  int i = 0;
  for (auto _ : state) {
    sched.release_job(tasks[i % 64], engine.now());
    ++i;
    if (i % 64 == 0) {
      state.PauseTiming();
      engine.run();  // drain so in-flight caps do not saturate
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgprsReleaseDecision);

void BM_FullScenarioSecond(benchmark::State& state) {
  // Simulating one second of 20-task SGPRS operation (the unit of work
  // behind every figure data point).
  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.num_contexts = 2;
    cfg.oversubscription = 1.5;
    cfg.num_tasks = 20;
    cfg.duration = common::SimTime::from_sec(1.0);
    cfg.warmup = common::SimTime::from_ms(100);
    benchmark::DoNotOptimize(workload::run_scenario(cfg));
  }
}
BENCHMARK(BM_FullScenarioSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
