// Shared sweep driver for the Fig. 3 / Fig. 4 reproductions, plus the
// machine-readable benchmark reporter every bench_* binary uses to leave a
// BENCH_<name>.json trajectory behind (schema: docs/benchmarks.md).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/json_writer.hpp"
#include "metrics/report.hpp"
#include "workload/scenario.hpp"

namespace sgprs::bench {

/// Collects named scalar metrics and writes one BENCH_<name>.json file.
///
/// The schema is deliberately flat so CI trend tooling needs no bench-
/// specific knowledge: {"bench", "schema_version", "metrics": [{"name",
/// "value", "unit"}]}. Values are doubles; anything structured belongs in a
/// new metric name, not a nested object.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& metric, double value, const std::string& unit) {
    metrics_.push_back(Metric{metric, value, unit});
  }

  /// Folds metrics from an existing BENCH_<name>.json in `dir` into this
  /// report, keeping them ahead of this run's metrics; a metric this run
  /// re-added wins over the file's copy. Lets several bench binaries
  /// cooperate on one report file (bench_fleet_churn and
  /// bench_shard_scaling both feed BENCH_fleet.json) independent of run
  /// order — call before write(). Schema v2, docs/benchmarks.md.
  void merge_existing(const std::string& dir = ".") {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    if (!std::ifstream(path)) return;  // first writer: nothing to merge
    common::JsonValue doc;
    try {
      doc = common::parse_json_file(path);
    } catch (const std::exception& e) {
      std::cerr << "WARNING: not merging unparsable " << path << ": "
                << e.what() << "\n";
      return;
    }
    const common::JsonValue* metrics = doc.find("metrics");
    if (!metrics || !metrics->is_array()) return;
    std::vector<Metric> kept;
    for (const auto& m : metrics->items()) {
      const auto* name = m.find("name");
      const auto* value = m.find("value");
      const auto* unit = m.find("unit");
      if (!name || !value || !unit) continue;
      bool shadowed = false;
      for (const auto& mine : metrics_) {
        shadowed = shadowed || mine.name == name->as_string();
      }
      if (!shadowed) {
        kept.push_back(
            Metric{name->as_string(), value->as_number(), unit->as_string()});
      }
    }
    metrics_.insert(metrics_.begin(), kept.begin(), kept.end());
  }

  /// Writes BENCH_<name>.json into `dir` (default: the working directory,
  /// where CI picks the files up as artifacts). Returns the path written;
  /// exits nonzero if the file cannot be written — a silently missing
  /// report would make the perf trajectory lie by omission.
  std::string write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "ERROR: cannot open " << path << " for writing\n";
      std::exit(1);
    }
    common::JsonWriter w(out);
    w.begin_object();
    w.field("bench", name_);
    w.field("schema_version", 2);
    w.key("metrics").begin_array();
    for (const auto& m : metrics_) {
      w.begin_object();
      w.field("name", m.name);
      w.field("value", m.value);
      w.field("unit", m.unit);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << "\n";
    out.flush();
    if (!out) {
      std::cerr << "ERROR: failed writing " << path << "\n";
      std::exit(1);
    }
    std::cerr << "wrote " << path << "\n";
    return path;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<Metric> metrics_;
};

struct FigureSweep {
  std::string label;                 // e.g. "naive", "SGPRS 1.5"
  std::vector<workload::ScenarioResult> results;
};

inline workload::ScenarioConfig figure_base(int num_contexts) {
  workload::ScenarioConfig cfg;
  cfg.num_contexts = num_contexts;
  cfg.duration = common::SimTime::from_sec(2.0);
  cfg.warmup = common::SimTime::from_sec(0.4);
  return cfg;
}

/// Runs the paper's comparison set over n = [from, to]: the naive baseline
/// plus SGPRS at over-subscription 1.0 / 1.5 / 2.0.
inline std::vector<FigureSweep> run_figure(int num_contexts, int from,
                                           int to) {
  std::vector<FigureSweep> sweeps;
  {
    auto cfg = figure_base(num_contexts);
    cfg.scheduler = workload::SchedulerKind::kNaive;
    sweeps.push_back({"naive", workload::sweep_num_tasks(cfg, from, to)});
    std::cerr << "  naive done\n";
  }
  for (double os : {1.0, 1.5, 2.0}) {
    auto cfg = figure_base(num_contexts);
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.oversubscription = os;
    char label[32];
    std::snprintf(label, sizeof(label), "SGPRS %.1f", os);
    sweeps.push_back({label, workload::sweep_num_tasks(cfg, from, to)});
    std::cerr << "  " << label << " done\n";
  }
  return sweeps;
}

/// Prints the two panels of a figure: (a) total FPS, (b) DMR.
inline void print_figure(const std::string& title,
                         const std::vector<FigureSweep>& sweeps, int from) {
  const auto n_points = sweeps.front().results.size();

  std::vector<std::string> headers = {"#tasks"};
  for (const auto& s : sweeps) headers.push_back(s.label);

  metrics::Table fps(headers);
  metrics::Table dmr(headers);
  for (std::size_t i = 0; i < n_points; ++i) {
    std::vector<std::string> frow = {std::to_string(from + (int)i)};
    std::vector<std::string> drow = frow;
    for (const auto& s : sweeps) {
      frow.push_back(metrics::Table::fmt(s.results[i].fps(), 0));
      drow.push_back(metrics::Table::pct(s.results[i].dmr()));
    }
    fps.add_row(frow);
    dmr.add_row(drow);
  }

  std::cout << title << "\n\n(a) Total FPS reached\n";
  fps.print(std::cout);
  std::cout << "\n(b) Deadline miss rate\n";
  dmr.print(std::cout);

  std::cout << "\nPivot points (largest task count with zero misses):\n";
  for (const auto& s : sweeps) {
    const int pivot = workload::find_pivot(s.results, from);
    double peak = 0.0;
    for (const auto& r : s.results) peak = std::max(peak, r.fps());
    std::cout << "  " << s.label << ": pivot = " << pivot
              << " tasks, peak FPS = " << metrics::Table::fmt(peak, 0)
              << ", FPS at max load = "
              << metrics::Table::fmt(s.results.back().fps(), 0) << "\n";
  }
}

}  // namespace sgprs::bench
