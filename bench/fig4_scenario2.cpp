// Fig. 4 reproduction — Scenario 2: a 3-context pool.
//
// Same sweep as Fig. 3 with three contexts. Paper shape targets: best
// pivot at 24 tasks; the over-subscription sweet spot moves down — 1.5x
// (741 fps) beats 2.0x (731 fps) because higher over-subscription brings
// more cross-context contention than it adds parallelism.
#include <iostream>

#include "figure_common.hpp"

int main() {
  std::cerr << "fig4: sweeping scenario 2 (3 contexts)...\n";
  const auto sweeps = sgprs::bench::run_figure(/*num_contexts=*/3, 1, 30);
  sgprs::bench::print_figure(
      "Fig. 4 — Scenario 2: 3 contexts, identical ResNet18 tasks @ 30 fps",
      sweeps, 1);
  return 0;
}
