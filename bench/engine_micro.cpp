// bench_engine_micro — events/sec of the discrete-event calendar itself,
// new slab engine vs the frozen seed engine, in one Release binary.
//
// The engine is the constant factor under every simulated event in the
// repo, and the Monte-Carlo experiment layer multiplies that constant by
// (cells x replications). Four workloads bracket how the schedulers
// actually drive it:
//   * schedule_fire:    repeated release-burst + drain rounds at the
//                       pending-set size real scenarios exhibit.
//   * schedule_cancel:  schedule a burst, cancel all, drain — the lazy-
//                       deletion path.
//   * completion_rearm: the executor's cancel-and-rearm completion event
//                       pattern, several reschedules per actual fire.
//   * parallel_sweep:   4 engines running whole burst workloads
//                       concurrently — the Monte-Carlo layer's shape.
// Callbacks capture what the runner really captures (4 words), so the
// comparison isolates engine overhead at the true capture size instead of
// benchmarking std::function copies of synthetic tiny lambdas.
//
// Each workload runs `kReps` times per engine and reports the best run
// (allocation warm-up lands in rep 1; steady state is what we measure).
// Emits BENCH_engine.json via bench::BenchReport (schema:
// docs/benchmarks.md) with both absolute rates and seed-relative speedups.
// Pass a directory argument to redirect the report.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline_engine.hpp"
#include "figure_common.hpp"
#include "sim/engine.hpp"

using namespace sgprs;
using common::SimTime;

namespace {

constexpr int kReps = 5;
// Instrumenting run_scenario(paper scenario 1 / 24-task stress) gives the
// real calendar profile this bench must match: pending-set high-water of
// 17-25 events, ~66k-99k schedules per run of which ~99.5% fire and ~0.5%
// are cancelled. schedule_fire therefore drives small bursts over many
// rounds; the cancel-heavy workloads below bracket the executor's rearm
// path, which dominates only in enqueue-storm phases.
constexpr std::size_t kBurst = 24;
constexpr std::size_t kRounds = 16384;
// Rearm workload shape: one pending completion per stream (a 4-context
// pool has 16 streams), several reschedules per actual completion.
constexpr std::size_t kStreams = 16;
constexpr std::size_t kRearmsPerFire = 4;
constexpr std::size_t kRearmEvents = 400000;

// Every callback carries the payload rt::Runner::arm_release actually
// captures (this, &task, at, fire — four words). This is what pushes the
// seed engine's std::function past its 16-byte SBO into one heap
// allocation per scheduled event, exactly as in real runs; the inplace
// buffer absorbs it.
struct Payload {
  std::uint64_t a = 1, b = 2, c = 3;
};

double best_events_per_sec(std::size_t events_per_run,
                           const std::function<void()>& run) {
  double best = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    if (sec > 0.0) {
      best = std::max(best, static_cast<double>(events_per_run) / sec);
    }
  }
  return best;
}

/// Multiplicative-hash scatter so the heap sees realistic disorder.
SimTime scattered(std::size_t i) {
  return SimTime::from_ns(
      static_cast<std::int64_t>((i * 2654435761u) % 1000000));
}

struct CountFire {
  std::uint64_t* sink;
  Payload payload;
  void operator()() const { *sink += payload.a; }
};

struct AbortFire {
  Payload payload;
  void operator()() const { std::abort(); }
};

template <typename EngineT>
double bench_schedule_fire() {
  return best_events_per_sec(kBurst * kRounds, [] {
    EngineT e;
    std::uint64_t sink = 0;
    for (std::size_t round = 0; round < kRounds; ++round) {
      const SimTime base = e.now();
      for (std::size_t i = 0; i < kBurst; ++i) {
        e.schedule_at(base + scattered(i), CountFire{&sink});
      }
      e.run();
    }
    if (sink != kBurst * kRounds) std::abort();
  });
}

template <typename EngineT>
double bench_schedule_cancel() {
  return best_events_per_sec(kBurst * kRounds, [] {
    EngineT e;
    std::vector<typename EngineT::EventId> ids;
    ids.reserve(kBurst);
    for (std::size_t round = 0; round < kRounds; ++round) {
      const SimTime base = e.now();
      ids.clear();
      for (std::size_t i = 0; i < kBurst; ++i) {
        ids.push_back(e.schedule_at(base + scattered(i), AbortFire{}));
      }
      for (const auto id : ids) {
        if (!e.cancel(id)) std::abort();
      }
      e.run();
    }
  });
}

/// The executor's literal steady-state pattern: every kernel enqueue
/// cancels the pending completion event and re-arms it at the new earliest
/// finish time (Executor::reschedule), with an actual fire only once per
/// batch. Modeled as kStreams in-flight completions, kRearmsPerFire
/// cancel+schedule pairs between consecutive fires. Events/sec counts
/// scheduled events, fired or cancelled — the engine pays for each either
/// way.
template <typename EngineT>
struct Rearm {
  EngineT e;
  std::vector<typename EngineT::EventId> ev;
  std::uint64_t fired = 0;

  struct OnFire {
    Rearm* c;
    Payload payload;
    void operator()() const { ++c->fired; }
  };

  SimTime dt(std::size_t n) const {
    return SimTime::from_ns(
        static_cast<std::int64_t>(1 + ((n * 40503u) & 4095)));
  }

  void run() {
    ev.assign(kStreams, EngineT::kInvalidEvent);
    std::size_t scheduled = 0;
    std::size_t s = 0;
    for (std::size_t i = 0; i < kStreams; ++i) {
      ev[i] = e.schedule_after(dt(scheduled++), OnFire{this});
    }
    while (scheduled < kRearmEvents) {
      for (std::size_t r = 0; r < kRearmsPerFire; ++r) {
        e.cancel(ev[s]);  // stale if this stream's completion already fired
        ev[s] = e.schedule_after(dt(scheduled++), OnFire{this});
        s = (s + 1) % kStreams;
      }
      e.step();
    }
    e.run();
  }
};

template <typename EngineT>
double bench_completion_rearm() {
  return best_events_per_sec(kRearmEvents, [] {
    auto rearm = std::make_unique<Rearm<EngineT>>();
    rearm->run();
  });
}

/// The Monte-Carlo experiment layer's shape: several independent engines
/// running whole simulations concurrently on a thread pool (PR 3 runs one
/// per (cell, replication) job). Per-event allocator traffic that looks
/// cheap single-threaded turns into cross-thread arena pressure here; the
/// slab engine stays allocation-free per event regardless of neighbours.
template <typename EngineT>
double bench_parallel_sweep() {
  constexpr std::size_t kThreads = 4;
  return best_events_per_sec(kThreads * kBurst * kRounds, [] {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t w = 0; w < kThreads; ++w) {
      workers.emplace_back([] {
        EngineT e;
        std::uint64_t sink = 0;
        for (std::size_t round = 0; round < kRounds; ++round) {
          const SimTime base = e.now();
          for (std::size_t i = 0; i < kBurst; ++i) {
            e.schedule_at(base + scattered(i), CountFire{&sink});
          }
          e.run();
        }
        if (sink != kBurst * kRounds) std::abort();
      });
    }
    for (auto& t : workers) t.join();
  });
}

struct Workload {
  const char* name;
  double (*seed)();
  double (*slab)();
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const Workload workloads[] = {
      {"schedule_fire", bench_schedule_fire<bench::BaselineEngine>,
       bench_schedule_fire<sim::Engine>},
      {"schedule_cancel", bench_schedule_cancel<bench::BaselineEngine>,
       bench_schedule_cancel<sim::Engine>},
      {"completion_rearm", bench_completion_rearm<bench::BaselineEngine>,
       bench_completion_rearm<sim::Engine>},
      {"parallel_sweep", bench_parallel_sweep<bench::BaselineEngine>,
       bench_parallel_sweep<sim::Engine>},
  };

  bench::BenchReport report("engine");
  std::cout << "engine micro-benchmark (best of " << kReps
            << " reps, events/sec)\n";
  double log_ratio_sum = 0.0;
  std::size_t n_ratios = 0;
  for (const auto& w : workloads) {
    std::cerr << w.name << "...\n";
    const double seed = w.seed();
    const double slab = w.slab();
    const double ratio = seed > 0.0 ? slab / seed : 0.0;
    if (ratio > 0.0) {
      log_ratio_sum += std::log(ratio);
      ++n_ratios;
    }
    report.add(std::string(w.name), slab, "events/sec");
    report.add(std::string(w.name) + "_seed", seed, "events/sec");
    report.add(std::string(w.name) + "_speedup", ratio, "x");
    std::cout << "  " << w.name << ": " << static_cast<std::int64_t>(slab)
              << " vs seed " << static_cast<std::int64_t>(seed) << "  ("
              << metrics::Table::fmt(ratio, 2) << "x)\n";
  }
  const double overall =
      n_ratios > 0 ? std::exp(log_ratio_sum / static_cast<double>(n_ratios))
                   : 0.0;
  report.add("overall_speedup_geomean", overall, "x");
  std::cout << "  overall (geomean): "
            << metrics::Table::fmt(overall, 2) << "x\n";
  report.write(out_dir);
  return 0;
}
