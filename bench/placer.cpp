// bench_placer — placement-control-plane throughput: one place_batch()
// call (the CASE-style batched decision the initial-placement and
// autoscaler drain paths take) against the equivalent per-event place_ex()
// loop, on a memory-constrained 16-device fleet under best-fit-decreasing
// bin packing.
//
// Both modes place the same deterministic mixed task set (seeded rng) on a
// fresh placer per trial, so the measured delta is the decision loop
// itself: cached ordering keys + one sort per batch vs. a full candidate
// re-sort per task. Also reports the admitted/oom split of each mode —
// BFD admits what sequential best-fit strands, and that quality gap is as
// much the point as the speed.
// Merges into BENCH_fleet.json (schema: docs/benchmarks.md).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "cluster/placer.hpp"
#include "figure_common.hpp"
#include "gpu/device.hpp"
#include "gpu/sharing.hpp"
#include "gpu/speedup.hpp"

namespace {

using namespace sgprs;
using common::SimTime;

constexpr int kDevices = 16;
constexpr int kTasksPerTrial = 256;
constexpr int kTrials = 60;
constexpr double kDeviceMemGiB = 4.0;

cluster::PlacerDevice device() {
  cluster::PlacerDevice d;
  d.spec = gpu::rtx2080ti();
  d.spec.mem_bytes = static_cast<std::int64_t>(kDeviceMemGiB * (1ll << 30));
  d.pool_sms = 34;
  d.capacity = rt::pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                                 gpu::SharingParams{}, 68, 2, 34, 4);
  return d;
}

cluster::Placer fresh_placer() {
  return cluster::Placer(
      std::vector<cluster::PlacerDevice>(kDevices, device()),
      cluster::PlacementPolicy::kBinPackMemory,
      /*admission_margin=*/0.95, /*occupancy_threshold=*/0.9);
}

/// Mixed fleet workload: mostly small streams with a heavy tail, total
/// demand slightly past fleet memory (~68 GiB offered vs 64 GiB) so memory
/// is the binding dimension, the probe loop walks real candidate lists,
/// and best-fit-decreasing has stranding to avoid rather than a fleet it
/// can trivially fill.
std::vector<rt::Task> make_tasks(const rt::PoolCapacityModel& cap) {
  std::mt19937 rng(20240807);
  std::uniform_real_distribution<double> frac(0.005, 0.03);
  std::uniform_real_distribution<double> mem_small(0.1, 0.2);
  std::uniform_real_distribution<double> mem_big(1.0, 3.0);
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  std::vector<rt::Task> tasks;
  tasks.reserve(kTasksPerTrial);
  for (int i = 0; i < kTasksPerTrial; ++i) {
    const double period_sec = 1.0 / 30.0;
    rt::Task t;
    t.id = i;
    t.name = "s" + std::to_string(i);
    t.period = SimTime::from_sec(period_sec);
    t.deadline = t.period;
    const double wcet_sec = frac(rng) * cap.work_rate * period_sec /
                            speedup.speedup(gpu::OpClass::kConv, 34.0);
    t.wcet.per_stage.resize(1);
    t.wcet.per_stage[0][34] = SimTime::from_sec(wcet_sec);
    t.wcet.total[34] = SimTime::from_sec(wcet_sec);
    const double gib = (i % 16 == 0) ? mem_big(rng) : mem_small(rng);
    t.mem_bytes = static_cast<std::int64_t>(gib * (1ll << 30));
    t.warps = 32 + (i % 5) * 16;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

struct ModeResult {
  double wall_s = 0.0;
  long long placed = 0;
  long long oom = 0;
  double placed_gib = 0.0;
  long long placed_bigs = 0;
};

double placed_gib_of(const cluster::Placer& p) {
  std::int64_t bytes = 0;
  for (int d = 0; d < p.num_devices(); ++d) {
    for (const auto& t : p.placed_on(d)) bytes += t.mem_bytes;
  }
  return static_cast<double>(bytes) / static_cast<double>(1ll << 30);
}

/// Heavy-tail tenants (>= 1 GiB) that found a home — the tasks sequential
/// best-fit strands behind small-stream fragmentation.
long long placed_bigs_of(const cluster::Placer& p) {
  long long bigs = 0;
  for (int d = 0; d < p.num_devices(); ++d) {
    for (const auto& t : p.placed_on(d)) bigs += t.mem_bytes >= (1ll << 30);
  }
  return bigs;
}

}  // namespace

int main() {
  const auto tasks = make_tasks(device().capacity);

  // Warm-up trial per mode pages everything in before timing.
  { auto p = fresh_placer(); (void)p.place_batch(tasks); }
  {
    auto p = fresh_placer();
    for (const auto& t : tasks) (void)p.place_ex(t);
  }

  ModeResult per_event;
  ModeResult batched;
  for (int trial = 0; trial < kTrials; ++trial) {
    {
      auto p = fresh_placer();
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& t : tasks) (void)p.place_ex(t);
      const auto t1 = std::chrono::steady_clock::now();
      per_event.wall_s += std::chrono::duration<double>(t1 - t0).count();
      per_event.placed += kTasksPerTrial - p.rejected();
      per_event.oom += p.oom_rejected();
      per_event.placed_gib += placed_gib_of(p);
      per_event.placed_bigs += placed_bigs_of(p);
    }
    {
      auto p = fresh_placer();
      const auto t0 = std::chrono::steady_clock::now();
      (void)p.place_batch(tasks);
      const auto t1 = std::chrono::steady_clock::now();
      batched.wall_s += std::chrono::duration<double>(t1 - t0).count();
      batched.placed += kTasksPerTrial - p.rejected();
      batched.oom += p.oom_rejected();
      batched.placed_gib += placed_gib_of(p);
      batched.placed_bigs += placed_bigs_of(p);
    }
  }

  const double n = static_cast<double>(kTrials) * kTasksPerTrial;
  const double per_event_rate = n / per_event.wall_s;
  const double batched_rate = n / batched.wall_s;
  std::cout << "placer bench (" << kDevices << " devices x "
            << kTasksPerTrial << " tasks x " << kTrials << " trials, "
            << "binpack_memory)\n"
            << "  per-event: " << per_event.wall_s << " s ("
            << per_event_rate / 1e6 << " M placements/s), "
            << per_event.placed / kTrials << " placed ("
            << per_event.placed_gib / kTrials << " GiB, "
            << per_event.placed_bigs / kTrials << "/16 heavy), "
            << per_event.oom / kTrials << " oom per trial\n"
            << "  batched:   " << batched.wall_s << " s ("
            << batched_rate / 1e6 << " M placements/s), "
            << batched.placed / kTrials << " placed ("
            << batched.placed_gib / kTrials << " GiB, "
            << batched.placed_bigs / kTrials << "/16 heavy), "
            << batched.oom / kTrials << " oom per trial\n";

  bench::BenchReport report("fleet");
  report.add("placer_per_event_wall_s", per_event.wall_s, "s");
  report.add("placer_batched_wall_s", batched.wall_s, "s");
  report.add("placer_per_event_placements_per_s", per_event_rate,
             "placements/s");
  report.add("placer_batched_placements_per_s", batched_rate,
             "placements/s");
  report.add("placer_batched_speedup", per_event.wall_s / batched.wall_s,
             "ratio");
  report.add("placer_per_event_placed_per_trial",
             static_cast<double>(per_event.placed) / kTrials, "tasks");
  report.add("placer_batched_placed_per_trial",
             static_cast<double>(batched.placed) / kTrials, "tasks");
  report.add("placer_per_event_oom_per_trial",
             static_cast<double>(per_event.oom) / kTrials, "tasks");
  report.add("placer_batched_oom_per_trial",
             static_cast<double>(batched.oom) / kTrials, "tasks");
  // BFD's quality edge is mass, not count: the heavy tenants sequential
  // best-fit strands all land, so more of the fleet's VRAM does work.
  report.add("placer_per_event_placed_gib_per_trial",
             per_event.placed_gib / kTrials, "GiB");
  report.add("placer_batched_placed_gib_per_trial",
             batched.placed_gib / kTrials, "GiB");
  report.add("placer_per_event_heavy_placed_per_trial",
             static_cast<double>(per_event.placed_bigs) / kTrials, "tasks");
  report.add("placer_batched_heavy_placed_per_trial",
             static_cast<double>(batched.placed_bigs) / kTrials, "tasks");
  // BENCH_fleet.json is shared with bench_fleet_churn / bench_shard_scaling.
  report.merge_existing();
  report.write();
  return 0;
}
