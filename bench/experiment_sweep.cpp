// bench_experiment_sweep — the Monte-Carlo counterpart of Fig. 3: a
// DMR-vs-offered-utilization curve for SGPRS vs the naive baseline, with
// 95% CIs over UUniFast seed replications (the in-code twin of
// scenarios/experiments/dmr_vs_utilization.json), plus a wall-clock
// comparison of the same 64-run grid at 1 worker vs 4 workers.
//
// The speedup printed at the end is the point of the thread pool: every
// replication is an independent single-threaded simulation, so on a >= 4
// core machine 4 jobs should cut wall clock by >= 2x. Reports stay
// byte-identical regardless of worker count (pinned by tests).
//
// Emits BENCH_experiment.json (schema: docs/benchmarks.md) so CI keeps a
// wall-clock trajectory of the whole sweep alongside the engine
// micro-benchmark. Pass a directory argument to redirect the report.
#include <iostream>
#include <string>

#include "figure_common.hpp"
#include "metrics/report.hpp"
#include "workload/experiment.hpp"

using namespace sgprs;

namespace {

workload::ExperimentSpec make_spec() {
  workload::ExperimentSpec spec;
  spec.name = "dmr_vs_utilization";
  spec.description =
      "DMR vs offered utilization, sgprs vs naive, 95% CI over UUniFast "
      "replications";
  spec.replications = 4;
  spec.base_seed = 1009;

  spec.base.name = spec.name;
  spec.base.base.num_contexts = 2;
  spec.base.base.oversubscription = 1.5;
  spec.base.base.duration = common::SimTime::from_sec(1.2);
  spec.base.base.warmup = common::SimTime::from_sec(0.3);
  workload::GeneratorSpec gen;
  gen.count = 12;
  gen.total_utilization = 2.0;
  gen.num_stages = 6;
  spec.base.generator = gen;

  workload::GridAxisSpec scheduler;
  scheduler.kind = workload::GridAxisKind::kScheduler;
  scheduler.name = "scheduler";
  scheduler.schedulers = {rt::SchedulerKind::kSgprs,
                          rt::SchedulerKind::kNaive};
  spec.axes.push_back(scheduler);

  workload::GridAxisSpec utilization;
  utilization.kind = workload::GridAxisKind::kUtilization;
  utilization.name = "utilization";
  utilization.numeric = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  spec.axes.push_back(utilization);

  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const auto spec = make_spec();
  const int total_runs =
      static_cast<int>(workload::cell_count(spec)) * spec.replications;
  std::cerr << "running " << workload::cell_count(spec) << " cells x "
            << spec.replications << " replications serially...\n";
  const auto serial = workload::run_experiment(spec, 1);
  std::cerr << "... and on 4 workers\n";
  const auto parallel = workload::run_experiment(spec, 4);

  print_experiment(serial, std::cout);

  const double speedup =
      parallel.wall_seconds > 0.0 ? serial.wall_seconds / parallel.wall_seconds
                                  : 0.0;
  std::cout << "\nwall clock: " << metrics::Table::fmt(serial.wall_seconds, 2)
            << " s serial vs " << metrics::Table::fmt(parallel.wall_seconds, 2)
            << " s on 4 jobs (speedup "
            << metrics::Table::fmt(speedup, 2) << "x)\n";

  bench::BenchReport report("experiment");
  report.add("total_runs", static_cast<double>(total_runs), "runs");
  report.add("wall_serial", serial.wall_seconds, "sec");
  report.add("wall_4jobs", parallel.wall_seconds, "sec");
  report.add("parallel_speedup", speedup, "x");
  report.add("runs_per_sec_serial",
             serial.wall_seconds > 0.0 ? total_runs / serial.wall_seconds
                                       : 0.0,
             "runs/sec");
  report.add("runs_per_sec_4jobs",
             parallel.wall_seconds > 0.0 ? total_runs / parallel.wall_seconds
                                         : 0.0,
             "runs/sec");
  report.write(out_dir);
  return 0;
}
