// Reproduces the paper's in-text summary numbers (Section V):
//   * pivot points — best-case 23 tasks (Scenario 1) and 24 (Scenario 2);
//   * naive collapse — 468 fps / 459 fps at max load, i.e. 38% / 36% below
//     the best SGPRS variant;
//   * Scenario 2 over-subscription inversion — SGPRS 1.5 (741 fps) above
//     SGPRS 2.0 (731 fps).
#include <iostream>

#include "figure_common.hpp"

namespace {

struct Row {
  std::string name;
  int pivot;
  double fps_at_max;
};

std::vector<Row> summarize(const std::vector<sgprs::bench::FigureSweep>& s,
                           int from) {
  std::vector<Row> rows;
  for (const auto& sweep : s) {
    rows.push_back({sweep.label, sgprs::workload::find_pivot(sweep.results,
                                                             from),
                    sweep.results.back().fps()});
  }
  return rows;
}

}  // namespace

int main() {
  using sgprs::metrics::Table;
  std::cerr << "table_pivot: running both scenario sweeps...\n";
  const int from = 14;  // the interesting region; below it nothing misses
  const auto s1 = sgprs::bench::run_figure(2, from, 30);
  const auto s2 = sgprs::bench::run_figure(3, from, 30);

  for (const auto& [name, sweeps] :
       {std::pair{std::string("Scenario 1 (2 contexts)"), &s1},
        std::pair{std::string("Scenario 2 (3 contexts)"), &s2}}) {
    const auto rows = summarize(*sweeps, from);
    double best = 0.0;
    for (const auto& r : rows) {
      if (r.name != "naive") best = std::max(best, r.fps_at_max);
    }
    Table t({"scheduler", "pivot (tasks)", "FPS @ 30 tasks",
             "drop vs best SGPRS"});
    for (const auto& r : rows) {
      t.add_row({r.name,
                 r.pivot < from ? "<" + std::to_string(from)
                                : std::to_string(r.pivot),
                 Table::fmt(r.fps_at_max, 0),
                 Table::pct(1.0 - r.fps_at_max / best)});
    }
    std::cout << "\n" << name << "\n";
    t.print(std::cout);
  }

  std::cout << "\nPaper reference points: S1 naive 468 fps (38% drop), "
               "best pivot 23;\n"
               "S2 naive 459 fps (36% drop), best pivot 24, "
               "SGPRS 1.5 (741) > SGPRS 2.0 (731).\n";
  return 0;
}
