// Fig. 3 reproduction — Scenario 1: a 2-context pool.
//
// Identical 30 fps ResNet18 tasks, 6 stages each, swept from 1 to 30
// tasks. Panels: (a) total FPS, (b) deadline miss rate, for the naive
// spatial-partitioning baseline and SGPRS at over-subscription 1.0 / 1.5 /
// 2.0. Paper shape targets: naive pivots much earlier and falls to 468 fps
// (a 38% drop vs best SGPRS ~755); SGPRS pivots near 23 tasks, sustains
// FPS, and in this scenario FPS increases with over-subscription.
#include <iostream>

#include "figure_common.hpp"

int main() {
  std::cerr << "fig3: sweeping scenario 1 (2 contexts)...\n";
  const auto sweeps = sgprs::bench::run_figure(/*num_contexts=*/2, 1, 30);
  sgprs::bench::print_figure(
      "Fig. 3 — Scenario 1: 2 contexts, identical ResNet18 tasks @ 30 fps",
      sweeps, 1);
  return 0;
}
