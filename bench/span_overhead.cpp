// bench_span_overhead — wall-clock cost of --trace-spans on the online
// fleet runtime.
//
// The same churn-heavy scenario bench_fleet_churn uses, run twice after a
// warm-up: once bare, once with a SpanSink attached (every release /
// dispatch / complete / drop / shed lands in a per-device buffer). The
// interesting number is overhead_pct — the design target is that tracing
// stays cheap enough to leave on for any diagnostic run (< 5% on this
// workload), because the hot path costs one predictable branch plus an
// amortized vector push. Export cost is reported separately: rendering
// the Perfetto JSON happens after the run, off the simulation path.
// Merges into BENCH_fleet.json (schema: docs/benchmarks.md). Trajectory
// data, not a gate.
#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <sstream>

#include "figure_common.hpp"
#include "fleet/runtime.hpp"
#include "obs/instruments.hpp"
#include "obs/span.hpp"
#include "workload/spec.hpp"

namespace {

using namespace sgprs;

workload::ScenarioSpec churn_spec() {
  workload::ScenarioSpec spec;
  spec.name = "bench_span_overhead";
  spec.base.num_contexts = 2;
  spec.base.oversubscription = 1.5;
  spec.base.duration = common::SimTime::from_sec(2.0);
  spec.base.warmup = common::SimTime::from_sec(0.2);
  spec.base.seed = 42;
  spec.base.admission_margin = 0.9;
  spec.fleet_mode = true;

  workload::TaskEntrySpec base_tasks;
  base_tasks.name = "cam";
  base_tasks.count = 6;
  spec.tasks.push_back(base_tasks);

  fleet::TimelineSpec timeline;
  timeline.seed = 7;
  fleet::StreamTemplate tmpl;
  tmpl.name = "burst";
  tmpl.tier = 1;
  timeline.templates.push_back(tmpl);
  fleet::ArrivalProcess arrivals;
  arrivals.tmpl = "burst";
  arrivals.rate_per_s = 80.0;
  arrivals.lifetime_min_s = 0.2;
  arrivals.lifetime_max_s = 0.5;
  timeline.arrivals.push_back(arrivals);
  spec.timeline = std::move(timeline);

  fleet::FleetPolicySpec policy;
  policy.autoscaler.kind = fleet::AutoscalePolicyKind::kUtilization;
  policy.autoscaler.min_devices = 1;
  policy.autoscaler.max_devices = 3;
  policy.autoscaler.tick_ms = 50.0;
  policy.autoscaler.warmup_ms = 100.0;
  policy.autoscaler.cooldown_ms = 200.0;
  policy.overload.shed = fleet::ShedMode::kPriority;
  policy.overload.queue_limit = 8;
  spec.fleet_policy = std::move(policy);
  return spec;
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto spec = churn_spec();
  workload::validate(spec);
  workload::RunSeeds seeds;
  seeds.sim = spec.base.seed;

  // Warm-up (page in code, grow slabs), then best-of-N interleaved
  // measurements: a single ~50 ms run is noise-dominated, and the minimum
  // over several runs is the standard estimator for deterministic work.
  fleet::FleetRunResult warm = fleet::run_fleet_scenario(spec, seeds);
  constexpr int kReps = 9;
  fleet::FleetRunResult bare;
  fleet::FleetRunResult traced;
  obs::SpanSink sink;
  double off_s = 1e300, on_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto run_bare = [&] {
      off_s = std::min(off_s, wall_seconds([&] {
                bare = fleet::run_fleet_scenario(spec, seeds);
              }));
    };
    // Fresh sink per rep: identical simulation (pinned by tests/obs/),
    // plus one buffered record per job event.
    obs::SpanSink rep_sink;
    const auto run_traced = [&] {
      obs::Instruments instruments;
      instruments.spans = &rep_sink;
      on_s = std::min(on_s, wall_seconds([&] {
               traced = fleet::run_fleet_scenario(spec, seeds, nullptr,
                                                  instruments);
             }));
    };
    // Alternate the order so slow drifts (thermal, noisy neighbors) hit
    // both configurations symmetrically.
    if (rep % 2 == 0) {
      run_bare();
      run_traced();
    } else {
      run_traced();
      run_bare();
    }
    if (rep == kReps - 1) sink = std::move(rep_sink);
  }

  std::ostringstream rendered;
  const double export_s =
      wall_seconds([&] { sink.write_perfetto(rendered); });

  const double off_eps = bare.sim_events / off_s;
  const double on_eps = traced.sim_events / on_s;
  const double overhead_pct = (off_eps / on_eps - 1.0) * 100.0;

  std::cout << "span tracing overhead bench\n"
            << "  spans off: " << bare.sim_events << " events in " << off_s
            << " s (" << off_eps / 1e6 << " M events/s)\n"
            << "  spans on:  " << traced.sim_events << " events in " << on_s
            << " s (" << on_eps / 1e6 << " M events/s), "
            << sink.total_events() << " span records\n"
            << "  overhead:  " << overhead_pct << " % (target < 5%), export "
            << export_s * 1e3 << " ms for " << rendered.str().size()
            << " bytes\n";
  (void)warm;

  bench::BenchReport report("fleet");
  report.add("span_off_events_per_s", off_eps, "events/s");
  report.add("span_on_events_per_s", on_eps, "events/s");
  report.add("span_overhead_pct", overhead_pct, "%");
  report.add("span_records", static_cast<double>(sink.total_events()),
             "records");
  report.add("span_export_wall_s", export_s, "s");
  report.add("span_export_bytes", static_cast<double>(rendered.str().size()),
             "bytes");
  // BENCH_fleet.json is shared with the other fleet benches: fold in
  // whatever they already wrote so run order does not matter.
  report.merge_existing();
  report.write();
  return 0;
}
