// Ablation C: stage granularity. The paper fixes 6 stages per task; this
// sweeps the partition size to show the trade-off that motivates staging —
// too coarse loses scheduling flexibility (no pipelining, no migration
// points), too fine pays launch-overhead and queueing overhead per stage.
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;
  using metrics::Table;

  std::cout << "Ablation C — stage-count sweep (Scenario 2, os 1.5, 24 "
               "tasks)\n\n";
  Table t({"stages/task", "total FPS", "DMR", "p50 lat (ms)",
           "p99 lat (ms)", "migrations"});
  for (int stages : {1, 2, 3, 6, 12, 24}) {
    workload::ScenarioConfig cfg;
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.num_contexts = 3;
    cfg.oversubscription = 1.5;
    cfg.num_tasks = 24;
    cfg.num_stages = stages;
    cfg.duration = common::SimTime::from_sec(2.0);
    cfg.warmup = common::SimTime::from_sec(0.4);
    const auto r = workload::run_scenario(cfg);
    t.add_row({std::to_string(stages), Table::fmt(r.fps(), 0),
               Table::pct(r.dmr()),
               Table::fmt(r.aggregate.p50_latency_ms, 2),
               Table::fmt(r.aggregate.p99_latency_ms, 2),
               std::to_string(r.stage_migrations)});
    std::cerr << "  " << stages << " stages done\n";
  }
  t.print(std::cout);
  std::cout << "\nCoarse partitions (1 stage) minimize queueing hops but "
               "give up migration and\nstage-priority leverage; very fine "
               "partitions recover flexibility at the cost of\nper-stage "
               "dispatch overhead. See EXPERIMENTS.md for discussion.\n";
  return 0;
}
