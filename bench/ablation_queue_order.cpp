// Ablation D: EDF vs FIFO ordering inside each priority level.
//
// The paper (Section IV-B3) orders stages within a priority level by
// Earliest Deadline First. This quantifies what that buys over plain
// arrival order at increasing load.
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;
  using metrics::Table;

  std::cout << "Ablation D — intra-level queue ordering (Scenario 1, os "
               "1.5)\n";
  for (int tasks : {22, 25, 28}) {
    Table t({"ordering", "total FPS", "DMR", "p50 lat (ms)",
             "p99 lat (ms)"});
    for (auto [name, order] :
         {std::pair{"EDF (paper)", rt::QueueOrder::kEdf},
          std::pair{"FIFO", rt::QueueOrder::kFifo}}) {
      workload::ScenarioConfig cfg;
      cfg.scheduler = workload::SchedulerKind::kSgprs;
      cfg.num_contexts = 2;
      cfg.oversubscription = 1.5;
      cfg.num_tasks = tasks;
      cfg.duration = common::SimTime::from_sec(2.0);
      cfg.warmup = common::SimTime::from_sec(0.4);
      cfg.sgprs.queue_order = order;
      const auto r = workload::run_scenario(cfg);
      t.add_row({name, Table::fmt(r.fps(), 0), Table::pct(r.dmr()),
                 Table::fmt(r.aggregate.p50_latency_ms, 2),
                 Table::fmt(r.aggregate.p99_latency_ms, 2)});
      std::cerr << "  " << tasks << "/" << name << " done\n";
    }
    std::cout << "\n" << tasks << " tasks:\n";
    t.print(std::cout);
  }
  return 0;
}
