// Fleet scaling sweep: 1 → 8 devices with the per-device oversubscription
// (tasks per device) held constant. If the cluster layer scales, total FPS
// grows linearly with the device count while DMR and utilization stay flat;
// any placement-induced imbalance shows up as a DMR knee.
//
//   fig_cluster_scaling [scheduler] [placement] [tasks-per-device]
//     scheduler: sgprs|naive            (default sgprs)
//     placement: roundrobin|leastloaded|binpack|hash  (default binpack)
//     tasks-per-device                   (default 12)
#include <cstdlib>
#include <iostream>
#include <string>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace sgprs;

  auto scheduler = rt::SchedulerKind::kSgprs;
  auto placement = cluster::PlacementPolicy::kBinPackUtilization;
  int tasks_per_device = 12;
  if (argc > 1) {
    const auto kind = rt::parse_scheduler_kind(argv[1]);
    if (!kind) {
      std::cerr << "unknown scheduler (want " << rt::scheduler_kind_names()
                << "): " << argv[1] << "\n";
      return 1;
    }
    scheduler = *kind;
  }
  if (argc > 2) {
    const auto policy = cluster::parse_placement_policy(argv[2]);
    if (!policy) {
      std::cerr << "unknown placement (want "
                << cluster::placement_policy_names() << "): " << argv[2]
                << "\n";
      return 1;
    }
    placement = *policy;
  }
  if (argc > 3) tasks_per_device = std::atoi(argv[3]);

  std::cout << "Cluster scaling: " << tasks_per_device
            << " ResNet18 tasks per device, scheduler "
            << rt::to_string(scheduler) << ", placement "
            << cluster::to_string(placement) << "\n\n";

  metrics::Table t({"devices", "offered", "placed", "total FPS",
                    "per-device FPS", "DMR", "mean util"});
  double fps_at_1 = 0.0;
  double fps_at_8 = 0.0;
  for (int devices = 1; devices <= 8; ++devices) {
    workload::ScenarioConfig cfg;
    cfg.scheduler = scheduler;
    cfg.oversubscription = 1.5;
    cfg.num_devices = devices;
    cfg.placement = placement;
    cfg.num_tasks = tasks_per_device * devices;
    cfg.duration = common::SimTime::from_sec(2.0);
    cfg.warmup = common::SimTime::from_sec(0.4);

    const auto r = workload::run_cluster_scenario(cfg);
    if (devices == 1) fps_at_1 = r.fps();
    if (devices == 8) fps_at_8 = r.fps();
    t.add_row({std::to_string(devices), std::to_string(cfg.num_tasks),
               std::to_string(r.fleet.tasks_assigned),
               metrics::Table::fmt(r.fps(), 0),
               metrics::Table::fmt(r.fps() / devices, 0),
               metrics::Table::pct(r.dmr()),
               metrics::Table::pct(r.fleet.mean_utilization)});
    std::cerr << "  " << devices << " device(s) done\n";
  }
  t.print(std::cout);
  std::cout << "\nScaling efficiency at 8 devices (FPS vs 8x the 1-device "
               "run): "
            << metrics::Table::pct(
                   fps_at_1 > 0.0 ? fps_at_8 / (8.0 * fps_at_1) : 0.0)
            << "\n";
  return 0;
}
