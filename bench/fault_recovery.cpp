// bench_fault_recovery — overhead of fault injection and failover in the
// online fleet runtime: the same churning fleet with and without a
// stochastic crash/repair process plus scripted correlated outages.
//
// Two runs, both Release, both measured with the process-local steady
// clock after a warm-up run:
//   * faulty: a 3-device fleet under Poisson stream churn, a seeded
//     MTBF/MTTR process knocking devices out, scripted correlated crashes,
//     and retry-with-backoff failover re-placing the orphans;
//   * clean: the identical spec with the "faults" section removed.
// Feeds BENCH_fleet.json (BenchReport::merge_existing; schema v2,
// docs/benchmarks.md) alongside bench_fleet_churn and bench_shard_scaling.
// Trajectory data, not a gate: the interesting number is the failover
// engine's control-plane cost — events per wall second faulty vs. clean —
// plus the recovery-latency tail the run produced.
#include <chrono>
#include <iostream>

#include "figure_common.hpp"
#include "fleet/runtime.hpp"
#include "workload/spec.hpp"

namespace {

using namespace sgprs;

workload::ScenarioSpec base_spec() {
  workload::ScenarioSpec spec;
  spec.name = "bench_fault_recovery";
  spec.base.num_contexts = 2;
  spec.base.oversubscription = 1.5;
  spec.base.duration = common::SimTime::from_sec(2.0);
  spec.base.warmup = common::SimTime::from_sec(0.2);
  spec.base.seed = 42;
  spec.base.admission_margin = 0.9;
  spec.base.num_devices = 3;
  spec.fleet_mode = true;

  workload::TaskEntrySpec cams;
  cams.name = "cam";
  cams.count = 9;
  spec.tasks.push_back(cams);

  fleet::TimelineSpec timeline;
  timeline.seed = 7;
  fleet::StreamTemplate tmpl;
  tmpl.name = "feed";
  tmpl.tier = 1;
  tmpl.fps = 20.0;
  timeline.templates.push_back(tmpl);
  fleet::ArrivalProcess arrivals;
  arrivals.tmpl = "feed";
  arrivals.rate_per_s = 20.0;
  arrivals.lifetime_min_s = 0.3;
  arrivals.lifetime_max_s = 1.0;
  arrivals.from_s = 0.2;
  timeline.arrivals.push_back(arrivals);
  spec.timeline = std::move(timeline);
  return spec;
}

workload::ScenarioSpec faulty_spec() {
  workload::ScenarioSpec spec = base_spec();
  fleet::FaultSpec faults;
  faults.seed = 13;
  faults.process.mtbf_s = 0.8;
  faults.process.mttr_s = 0.3;
  faults.process.from_s = 0.3;
  fleet::FaultEvent outage;
  outage.kind = fleet::FaultEvent::Kind::kCrash;
  outage.at_s = 1.01;
  outage.device = -1;
  outage.count = 2;
  outage.down_s = 0.25;
  faults.events.push_back(outage);
  faults.failover.max_attempts = 4;
  faults.failover.backoff_ms = 20.0;
  faults.failover.backoff_mult = 2.0;
  faults.failover.jitter_ms = 5.0;
  faults.min_active_devices = 2;
  faults.degraded_queue_limit = 2;
  spec.faults = std::move(faults);
  return spec;
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto faulty = faulty_spec();
  const auto clean = base_spec();
  workload::validate(faulty);
  workload::validate(clean);

  // Warm-up run (page in code, grow slabs) + measured run, each flavour.
  fleet::FleetRunResult warm = fleet::run_fleet_scenario(faulty);
  fleet::FleetRunResult result;
  const double faulty_s =
      wall_seconds([&] { result = fleet::run_fleet_scenario(faulty); });

  fleet::FleetRunResult clean_warm = fleet::run_fleet_scenario(clean);
  fleet::FleetRunResult clean_result;
  const double clean_s =
      wall_seconds([&] { clean_result = fleet::run_fleet_scenario(clean); });

  const double faulty_eps = result.sim_events / faulty_s;
  const double clean_eps = clean_result.sim_events / clean_s;

  std::cout << "fault recovery bench\n"
            << "  faulty: " << result.sim_events << " events in " << faulty_s
            << " s (" << faulty_eps / 1e6 << " M events/s), "
            << result.devices_failed << " crashes, "
            << result.devices_recovered << " recoveries, "
            << result.failovers << " failovers ("
            << result.failover_retries << " retries), "
            << result.jobs_faulted << " jobs faulted, "
            << result.streams_lost << " streams lost, recovery p99 "
            << result.recovery_p99_s << " s, unavailability "
            << result.unavailability_s << " stream-s\n"
            << "  clean:  " << clean_result.sim_events << " events in "
            << clean_s << " s (" << clean_eps / 1e6 << " M events/s)\n";
  (void)warm;
  (void)clean_warm;

  bench::BenchReport report("fleet");
  report.add("fault_wall_s", faulty_s, "s");
  report.add("fault_sim_events", result.sim_events, "events");
  report.add("fault_events_per_s", faulty_eps, "events/s");
  report.add("fault_devices_failed", static_cast<double>(result.devices_failed),
             "crashes");
  report.add("fault_devices_recovered",
             static_cast<double>(result.devices_recovered), "recoveries");
  report.add("fault_failovers", static_cast<double>(result.failovers), "streams");
  report.add("fault_failover_retries",
             static_cast<double>(result.failover_retries), "attempts");
  report.add("fault_jobs_faulted", static_cast<double>(result.jobs_faulted),
             "jobs");
  report.add("fault_streams_lost", static_cast<double>(result.streams_lost),
             "streams");
  report.add("fault_recovery_p99_s", result.recovery_p99_s, "s");
  report.add("fault_unavailability_s", result.unavailability_s, "stream-s");
  report.add("fault_clean_wall_s", clean_s, "s");
  report.add("fault_clean_events_per_s", clean_eps, "events/s");
  report.add("fault_vs_clean_events_per_s_ratio", faulty_eps / clean_eps,
             "ratio");
  report.merge_existing();
  report.write();
  return 0;
}
