// bench_fleet_churn — throughput of the online fleet runtime under heavy
// stream churn, autoscaling and overload control, against the closed-world
// cluster path serving a comparable steady load.
//
// Two runs, both Release, both measured with the process-local steady
// clock after a warm-up run:
//   * churn: a 1→3-device autoscaled fleet with a scripted admission wave
//     plus an aggressive Poisson arrival process (hundreds of add_task /
//     generation-tagged retire cycles, re-placements and drain probes);
//   * static: the same base device/pool serving a fixed task set sized to
//     the churn run's mean live-stream count.
// Reports BENCH_fleet.json (schema: docs/benchmarks.md). Trajectory data,
// not a gate: the interesting number is control-plane overhead — sim
// events per wall second under churn vs. the closed world.
#include <chrono>
#include <iostream>

#include "figure_common.hpp"
#include "fleet/runtime.hpp"
#include "workload/spec.hpp"

namespace {

using namespace sgprs;

workload::ScenarioSpec churn_spec() {
  workload::ScenarioSpec spec;
  spec.name = "bench_fleet_churn";
  spec.base.num_contexts = 2;
  spec.base.oversubscription = 1.5;
  spec.base.duration = common::SimTime::from_sec(2.0);
  spec.base.warmup = common::SimTime::from_sec(0.2);
  spec.base.seed = 42;
  spec.base.admission_margin = 0.9;
  spec.fleet_mode = true;

  workload::TaskEntrySpec base_tasks;
  base_tasks.name = "cam";
  base_tasks.count = 6;
  spec.tasks.push_back(base_tasks);

  fleet::TimelineSpec timeline;
  timeline.seed = 7;
  fleet::StreamTemplate tmpl;
  tmpl.name = "burst";
  tmpl.tier = 1;
  timeline.templates.push_back(tmpl);
  fleet::TimelineEvent wave;
  wave.kind = fleet::TimelineEvent::Kind::kAdmit;
  wave.target = "burst";
  wave.count = 2;
  wave.every_s = 0.1;
  wave.from_s = 0.1;
  wave.until_s = 1.0;
  timeline.events.push_back(wave);
  fleet::ArrivalProcess arrivals;
  arrivals.tmpl = "burst";
  arrivals.rate_per_s = 80.0;
  arrivals.lifetime_min_s = 0.2;
  arrivals.lifetime_max_s = 0.5;
  timeline.arrivals.push_back(arrivals);
  spec.timeline = std::move(timeline);

  fleet::FleetPolicySpec policy;
  policy.autoscaler.kind = fleet::AutoscalePolicyKind::kUtilization;
  policy.autoscaler.min_devices = 1;
  policy.autoscaler.max_devices = 3;
  policy.autoscaler.tick_ms = 50.0;
  policy.autoscaler.warmup_ms = 100.0;
  policy.autoscaler.cooldown_ms = 200.0;
  policy.overload.shed = fleet::ShedMode::kPriority;
  policy.overload.queue_limit = 8;
  spec.fleet_policy = std::move(policy);
  return spec;
}

workload::ScenarioSpec static_spec(int tasks) {
  workload::ScenarioSpec spec;
  spec.name = "bench_fleet_static";
  spec.base = churn_spec().base;
  spec.base.num_tasks = tasks;
  spec.fleet_mode = true;
  workload::TaskEntrySpec entry;
  entry.name = "cam";
  entry.count = tasks;
  spec.tasks.push_back(entry);
  return spec;
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto churn = churn_spec();
  workload::validate(churn);

  // Warm-up run (page in code, grow slabs) + measured run.
  fleet::FleetRunResult warm = fleet::run_fleet_scenario(churn);
  fleet::FleetRunResult result;
  const double churn_s =
      wall_seconds([&] { result = fleet::run_fleet_scenario(churn); });

  // Static comparison sized to the churn run's mean live-stream count
  // (streams integrated over samples / sample count).
  double mean_live = 0.0;
  for (const auto& s : result.series.samples) mean_live += s.streams_live;
  if (!result.series.samples.empty()) {
    mean_live /= static_cast<double>(result.series.samples.size());
  }
  const int static_tasks = std::max(1, static_cast<int>(mean_live + 0.5));
  const auto fixed = static_spec(static_tasks);
  workload::validate(fixed);
  workload::SpecResult fixed_warm = workload::run_spec(fixed);
  workload::SpecResult fixed_result;
  const double static_s =
      wall_seconds([&] { fixed_result = workload::run_spec(fixed); });

  const double churn_eps = result.sim_events / churn_s;
  const double static_eps = fixed_result.fleet
                                ? fixed_result.cluster.sim_events / static_s
                                : fixed_result.single.sim_events / static_s;

  std::cout << "fleet churn bench\n"
            << "  churn:  " << result.sim_events << " events in " << churn_s
            << " s (" << churn_eps / 1e6 << " M events/s), "
            << result.streams_admitted << " streams admitted, "
            << result.streams_retired << " retired, " << result.scale_ups
            << " scale-ups, " << result.scale_downs << " scale-downs, "
            << result.jobs_shed << " shed\n"
            << "  static: " << static_tasks << " tasks, " << static_eps / 1e6
            << " M events/s\n";
  (void)warm;
  (void)fixed_warm;

  bench::BenchReport report("fleet");
  report.add("churn_wall_s", churn_s, "s");
  report.add("churn_sim_events", result.sim_events, "events");
  report.add("churn_events_per_s", churn_eps, "events/s");
  report.add("streams_admitted",
             static_cast<double>(result.streams_admitted), "streams");
  report.add("streams_retired",
             static_cast<double>(result.streams_retired), "streams");
  report.add("jobs_shed", static_cast<double>(result.jobs_shed), "jobs");
  report.add("scale_ups", static_cast<double>(result.scale_ups), "actions");
  report.add("scale_downs", static_cast<double>(result.scale_downs),
             "actions");
  report.add("peak_devices", static_cast<double>(result.peak_devices),
             "devices");
  report.add("static_wall_s", static_s, "s");
  report.add("static_events_per_s", static_eps, "events/s");
  report.add("churn_vs_static_events_per_s_ratio", churn_eps / static_eps,
             "ratio");
  // BENCH_fleet.json is shared with bench_shard_scaling: fold in whatever
  // the other binary already wrote so run order does not matter.
  report.merge_existing();
  report.write();
  return 0;
}
