// Fig. 1 reproduction: speedup gain per operation as a function of SM
// count, measured in isolation, plus the ResNet18 end-to-end curve.
//
// Paper targets at 68 SMs: convolution 32x (best), max pooling 14x, every
// other operation below 7x, ResNet18 overall "only 23x".
#include <iostream>

#include "dnn/builders.hpp"
#include "dnn/profiler.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace sgprs;

  const auto model = gpu::SpeedupModel::rtx2080ti();
  const dnn::Profiler prof(gpu::rtx2080ti(), model,
                           dnn::CostModel::calibrated());
  const auto net = dnn::resnet18();

  const int sm_points[] = {1, 2, 4, 8, 16, 23, 34, 45, 51, 60, 68};

  std::vector<std::string> headers = {"#SMs"};
  for (int i = 0; i < gpu::kOpClassCount; ++i) {
    headers.push_back(gpu::kOpClassNames[i]);
  }
  headers.push_back("resnet18");

  metrics::Table table(headers);
  for (int sms : sm_points) {
    std::vector<std::string> row = {std::to_string(sms)};
    for (int i = 0; i < gpu::kOpClassCount; ++i) {
      row.push_back(metrics::Table::fmt(
          model.speedup(static_cast<gpu::OpClass>(i), sms), 2));
    }
    row.push_back(metrics::Table::fmt(prof.network_speedup(net, sms), 2));
    table.add_row(row);
  }

  std::cout << "Fig. 1 — Speedup gain per operation when running in "
               "isolation (simulated RTX 2080 Ti)\n\n";
  table.print(std::cout);

  std::cout << "\nPaper check at 68 SMs: conv 32x, maxpool 14x, others < "
               "7x, ResNet18 ~23x.\n";
  std::cout << "Measured: conv "
            << metrics::Table::fmt(model.speedup(gpu::OpClass::kConv, 68), 1)
            << "x, maxpool "
            << metrics::Table::fmt(model.speedup(gpu::OpClass::kMaxPool, 68),
                                   1)
            << "x, resnet18 "
            << metrics::Table::fmt(prof.network_speedup(net, 68), 1)
            << "x.\n";
  return 0;
}
