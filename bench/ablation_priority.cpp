// Ablation A: the paper's two offline/online priority mechanisms.
//
//  * Two-level priority assignment (last stage high) vs all-low / all-high
//    (Section IV-A1).
//  * Medium-priority promotion of late chains on vs off (Section IV-B3).
//
// Run in the overload region (26 tasks, Scenario 1, os 1.5) where the
// mechanisms matter.
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;
  using metrics::Table;

  workload::ScenarioConfig base;
  base.scheduler = workload::SchedulerKind::kSgprs;
  base.num_contexts = 2;
  base.oversubscription = 1.5;
  base.num_tasks = 26;
  base.duration = common::SimTime::from_sec(2.0);
  base.warmup = common::SimTime::from_sec(0.4);

  struct Variant {
    std::string name;
    rt::PriorityPolicy policy;
    bool medium_boost;
  };
  const Variant variants[] = {
      {"two-level + medium boost (paper)", rt::PriorityPolicy::kLastStageHigh,
       true},
      {"two-level, no medium boost", rt::PriorityPolicy::kLastStageHigh,
       false},
      {"all-low + medium boost", rt::PriorityPolicy::kAllLow, true},
      {"all-low, no medium boost", rt::PriorityPolicy::kAllLow, false},
      {"all-high (priority inflation)", rt::PriorityPolicy::kAllHigh, false},
  };

  Table t({"variant", "total FPS", "DMR", "p99 lat (ms)",
           "medium promotions"});
  for (const auto& v : variants) {
    auto cfg = base;
    cfg.priority_policy = v.policy;
    cfg.sgprs.medium_boost = v.medium_boost;
    const auto r = workload::run_scenario(cfg);
    t.add_row({v.name, Table::fmt(r.fps(), 0), Table::pct(r.dmr()),
               Table::fmt(r.aggregate.p99_latency_ms, 1),
               std::to_string(r.medium_promotions)});
    std::cerr << "  " << v.name << " done\n";
  }

  std::cout << "Ablation A — priority mechanisms (Scenario 1, os 1.5, 26 "
               "tasks, overload)\n\n";
  t.print(std::cout);
  std::cout << "\nExpected: the paper combination minimizes DMR; all-high "
               "collapses the distinction\nbetween final and intermediate "
               "stages and hurts tail latency.\n";
  return 0;
}
