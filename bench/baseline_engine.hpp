// Frozen copy of the seed discrete-event engine (pre slab/free-list
// rewrite), kept verbatim so bench_engine_micro can measure old vs new in
// the same Release build and BENCH_engine.json can report an honest
// speedup ratio rather than numbers from two different binaries/runs.
//
// Do not maintain this file: it is a measurement artifact, not a fallback.
// Semantics (FIFO tie-break, lazy cancellation) match sim::Engine exactly;
// only the data structures differ — std::function callbacks in an
// unordered_map beside a lazily-cleaned priority_queue, i.e. two heap
// allocations and two hash operations per event.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace sgprs::bench {

using common::SimTime;

class BaselineEngine {
 public:
  using EventId = std::uint64_t;
  using EventFn = std::function<void()>;
  static constexpr EventId kInvalidEvent = 0;

  BaselineEngine() = default;
  BaselineEngine(const BaselineEngine&) = delete;
  BaselineEngine& operator=(const BaselineEngine&) = delete;

  SimTime now() const { return now_; }

  EventId schedule_at(SimTime t, EventFn fn) {
    SGPRS_CHECK(t >= now_);
    SGPRS_CHECK(fn != nullptr);
    const EventId id = next_id_++;
    heap_.push(HeapEntry{t, next_seq_++, id});
    pending_.emplace(id, std::move(fn));
    return id;
  }

  EventId schedule_after(SimTime dt, EventFn fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  bool cancel(EventId id) { return pending_.erase(id) > 0; }

  bool step() {
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      heap_.pop();
      auto it = pending_.find(top.id);
      if (it == pending_.end()) continue;  // cancelled
      EventFn fn = std::move(it->second);
      pending_.erase(it);
      now_ = top.t;
      fn();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

 private:
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq;
    EventId id;
    bool operator>(const HeapEntry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::unordered_map<EventId, EventFn> pending_;
};

}  // namespace sgprs::bench
